#!/usr/bin/env python3
"""Validate and perf-gate BENCH_kernel_throughput.json.

Two layers, both exercised by the CI bench smoke job:

**Schema check** (always on). The perf-trajectory tooling keys on four
things per kernel benchmark: the algorithm (from the benchmark family
name), the kernel backend (an optional ``Scalar``/``Avx2``/``Avx512``
family suffix for the explicit per-backend sweeps, plus the
dispatcher's choice recorded in the JSON context as ``kernel_backend``),
the activation density (the benchmark argument), and the achieved
throughput (``bytes_per_second``, reported as GB/s). A refactor that
renames a family, drops the density argument, stops calling
``SetBytesProcessed`` or loses the backend context silently breaks the
trajectory; this script fails the job instead. It also fails when a
SIMD-capable host silently dispatched to a narrower backend (a broken
CPUID path would otherwise masquerade as a perf regression) — unless
CDMA_KERNEL_BACKEND requested exactly that backend.

**Perf-regression gate** (``--baseline``). Compares every recorded
``BM_*`` row of the baseline report against the same-named row of the
validated report and fails on a throughput drop beyond
``--regression-tolerance`` (default 25%, tuned for the ~13%
run-to-run CV of the 1-core recording container). Only same-backend
rows are gated: rows whose family pins the backend in its suffix
always compare; suffix-less rows ride the runtime dispatch and compare
only when both reports dispatched the same backend. Rows absent from
either report are skipped (avx512 rows exist only in reports recorded
on AVX-512 hosts), unless the validated report's producer supports the
row's backend — then a vanished family is a trajectory break, not a
host difference. A per-family allowlist (``--allow-regression`` plus
the built-in defaults) exempts rows that are measurement-only on this
host: parallel fan-out (1-core container measures overhead, not
scaling) and the fleet DES model rates.

``--self-test`` proves the gate actually trips: it injects a 2x
slowdown into one gated row of the committed report and fails unless
the comparison catches it (and passes an unmodified copy).

Usage:
  bench/check_bench_json.py [report.json]                 schema check
  bench/check_bench_json.py fresh.json --baseline committed.json \
      [--regression-tolerance 0.25] [--allow-regression FAMILY]...
  bench/check_bench_json.py --self-test [report.json]
"""

import argparse
import copy
import json
import os
import re
import sys

# Families whose presence (at >= 1 density) the trajectory depends on,
# and which must report bytes_per_second — both pipeline directions:
# the compress families feed the offload-leg trajectory, the decompress
# families the prefetch leg, and the duplex-transfer model families the
# contended-link trajectory (full vs half duplex). The parallel/lane
# and per-backend variants are validated when present but are optional:
# a reduced smoke run may filter to the serial kernels.
REQUIRED_FAMILIES = ("BM_ZvcCompress", "BM_RleCompress", "BM_DeflateCompress",
                     "BM_ZvcDecompress", "BM_RleDecompress",
                     "BM_DeflateDecompress")
DUPLEX_FAMILIES = ("BM_DuplexTransferModelFull", "BM_DuplexTransferModelHalf")
# Fleet DES rows: N data-parallel GPUs behind one fixed-bandwidth
# switch uplink. Each family must carry a positive mean
# contention-stall fraction (a zero means the shared uplink stopped
# arbitrating), and the fraction must strictly increase in fleet size
# (a flat trajectory means the per-source wait attribution broke).
FLEET_FAMILIES = ("BM_FleetOffloadN2", "BM_FleetOffloadN4",
                  "BM_FleetOffloadN8")
# Adaptive codec-policy rows: BM_AdaptivePolicyDecide/<density> is a
# full decide() (strided density sample over real activation bytes plus
# the cost model), BM_AdaptivePolicyFromDensity the model-only path the
# step simulator uses. Both are required, and the sampled decide() must
# stay >= POLICY_OVERHEAD_FACTOR times the throughput of the
# same-density dispatch ZVC compress row — the "selection costs < 1% of
# the compress pass it steers" acceptance bound, expressed in the same
# bytes/s units both rows already report.
POLICY_FAMILIES = ("BM_AdaptivePolicyDecide", "BM_AdaptivePolicyFromDensity")
POLICY_OVERHEAD_FACTOR = 100.0
# CRC-32C integrity-framing rows: the scalar slice-by-8 row is
# unconditional; the hardware (SSE4.2) row is required whenever the
# producing host has it (recorded as host_avx2 — every AVX2 part has
# SSE4.2). Losing these rows would blind the trajectory to the framing
# tax the robustness layer added.
CRC_SCALAR_FAMILY = "BM_Crc32Scalar"
CRC_HW_FAMILY = "BM_Crc32Hw"
# Widest first: the silent-fallback check expects the dispatcher to
# pick the widest backend the producing host supports.
KNOWN_BACKENDS = ("avx512", "avx2", "scalar")
BACKEND_SUFFIXES = ("Scalar", "Avx512", "Avx2", "Hw")
KNOWN_DUPLEX_MODES = ("full_duplex", "half_duplex")
NAME_RE = re.compile(r"^BM_([A-Za-z0-9]+?)(Compress|Decompress|CycleModel|"
                     r"EngineCycleModel|TransferModel(?:Full|Half))?"
                     r"(Parallel)?(Scalar|Avx512|Avx2|Hw)?"
                     r"(/\d+)*(/[a-z_]+)*$")
# Rows that are measurement-only on the recording host and therefore
# exempt from the regression gate by default: the parallel fan-out
# families (the 1-core container measures fan-out overhead, not
# scaling — see docs/performance.md) and the fleet DES model rates
# (host-side modeling speed of a contention sweep, dominated by event
# count, gated separately via their contention counters).
DEFAULT_ALLOWED_REGRESSIONS = re.compile(r"Parallel|^BM_FleetOffload")


def fail(message: str) -> None:
    print(f"check_bench_json: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def producer_supports(context: dict, backend: str) -> bool:
    """Capability of the machine that PRODUCED the report.

    Preferred source is the ``host_avx2``/``host_avx512`` context field
    the bench binary records (its own CPUID probe), so validating a
    report on a different machine judges the producer, not the
    validator. Reports that predate the field fall back to probing this
    host's /proc/cpuinfo (Linux best-effort; absence of evidence ->
    False).
    """
    if backend == "scalar":
        return True
    recorded = context.get(f"host_{backend}")
    if recorded is not None:
        return recorded == "true"
    flag = {"avx2": "avx2", "avx512": "avx512f"}[backend]
    try:
        with open("/proc/cpuinfo", encoding="utf-8") as handle:
            return any(flag in line for line in handle
                       if line.startswith("flags"))
    except OSError:
        return False


def check_backend_context(report: dict) -> str:
    context = report.get("context", {})
    backend = context.get("kernel_backend")
    if not backend:
        fail("context lacks 'kernel_backend' (the bench binary must "
             "record the dispatched kernel backend)")
    if backend not in KNOWN_BACKENDS:
        fail(f"context kernel_backend '{backend}' is not one of "
             f"{', '.join(KNOWN_BACKENDS)}")
    # Dispatch provenance travels in the JSON itself (the bench binary
    # records any CDMA_KERNEL_BACKEND override it saw), so the check
    # holds up when the JSON is validated from a different shell or CI
    # step; the checker's own environment is only a fallback for
    # reports that predate the provenance field.
    forced = context.get("kernel_backend_forced",
                         os.environ.get("CDMA_KERNEL_BACKEND", ""))
    widest = next(b for b in KNOWN_BACKENDS
                  if producer_supports(context, b))
    if backend != widest and forced != backend:
        fail(f"the producing host supports {widest} but the bench "
             f"dispatched to the {backend} backend without "
             f"CDMA_KERNEL_BACKEND={backend} — the CPUID dispatch path "
             "silently fell back")
    return backend


def check_duplex_context(report: dict) -> str:
    """The engine-default link configuration the bench ran under.

    The duplex-transfer model families sweep Full and Half explicitly
    (their family suffix is the mode), but the context field records
    what an unconfigured engine would do — a refactor that flips the
    default silently would skew every non-duplex trajectory row.
    """
    context = report.get("context", {})
    mode = context.get("duplex_mode")
    if not mode:
        fail("context lacks 'duplex_mode' (the bench binary must record "
             "the engine-default link configuration)")
    if mode not in KNOWN_DUPLEX_MODES:
        fail(f"context duplex_mode '{mode}' is not one of "
             f"{', '.join(KNOWN_DUPLEX_MODES)}")
    return mode


def load_report(path: str) -> dict:
    try:
        with open(path, encoding="utf-8") as handle:
            return json.load(handle)
    except FileNotFoundError:
        fail(f"{path} is missing (did the bench binary run?)")
    except json.JSONDecodeError as error:
        fail(f"{path} is not valid JSON: {error}")


def check_schema(report: dict, path: str) -> str:
    backend = check_backend_context(report)
    duplex_mode = check_duplex_context(report)

    benchmarks = report.get("benchmarks")
    if not benchmarks:
        fail(f"{path} has no 'benchmarks' array (or it is empty)")

    seen_families = set()
    fleet_contention = {}
    policy_decide_bps = {}
    zvc_dispatch_bps = {}
    for entry in benchmarks:
        name = entry.get("name")
        if not name:
            fail(f"benchmark entry without a name: {entry}")
        if entry.get("run_type") == "aggregate":
            continue
        match = NAME_RE.match(name)
        if not match:
            fail(f"benchmark name '{name}' does not parse as "
                 "BM_<Algorithm><Kind>[<Backend>][/density[/lanes]]")
        family = name.split("/")[0]
        seen_families.add(family)
        # Every throughput kernel must report bytes_per_second (that is
        # the GB/s column of docs/performance.md); the cycle-model
        # benchmark reports a modeled-rate counter instead.
        if "CycleModel" not in family:
            bps = entry.get("bytes_per_second")
            if not isinstance(bps, (int, float)) or bps <= 0:
                fail(f"'{name}' lacks a positive bytes_per_second "
                     f"(got {bps!r})")
        # Compression kernels encode density as the first argument.
        if "Compress" in family and "/" not in name:
            fail(f"'{name}' is missing its density argument")
        # The half-duplex model family must carry the modeled
        # contention counter, and the race must actually cost something
        # (a zero here means the contended DES silently degenerated).
        if family == "BM_DuplexTransferModelHalf":
            stall = entry.get("contention_stall_fraction")
            if not isinstance(stall, (int, float)) or stall <= 0:
                fail(f"'{name}' lacks a positive "
                     f"contention_stall_fraction (got {stall!r})")
        if family == "BM_DuplexTransferModelFull":
            stall = entry.get("contention_stall_fraction")
            if not isinstance(stall, (int, float)) or stall != 0:
                fail(f"'{name}' must report zero contention under full "
                     f"duplex (got {stall!r})")
        # Fleet rows: N > 1 ranks sharing one uplink must pay a
        # positive cross-source stall.
        if family in FLEET_FAMILIES:
            stall = entry.get("contention_stall_fraction")
            if not isinstance(stall, (int, float)) or stall <= 0:
                fail(f"'{name}' lacks a positive "
                     f"contention_stall_fraction (got {stall!r})")
            fleet_contention[family] = stall
        # Collect the per-density rows the policy-overhead bound
        # compares: the sampled decide() against the dispatch ZVC
        # compress it would steer.
        if "/" in name and isinstance(entry.get("bytes_per_second"),
                                      (int, float)):
            density_arg = name.split("/")[1]
            if family == "BM_AdaptivePolicyDecide":
                policy_decide_bps[density_arg] = entry["bytes_per_second"]
            elif family == "BM_ZvcCompress":
                zvc_dispatch_bps[density_arg] = entry["bytes_per_second"]

    missing = [f for f in REQUIRED_FAMILIES if f not in seen_families]
    if missing:
        fail(f"required benchmark families absent: {', '.join(missing)}")
    missing_duplex = [f for f in DUPLEX_FAMILIES if f not in seen_families]
    if missing_duplex:
        fail("duplex-transfer model families absent: "
             f"{', '.join(missing_duplex)}")
    missing_fleet = [f for f in FLEET_FAMILIES if f not in seen_families]
    if missing_fleet:
        fail(f"fleet DES families absent: {', '.join(missing_fleet)}")
    missing_policy = [f for f in POLICY_FAMILIES if f not in seen_families]
    if missing_policy:
        fail("adaptive codec-policy families absent: "
             f"{', '.join(missing_policy)}")
    # Selection-overhead bound: at every density where both rows exist,
    # a decide() must push bytes >= POLICY_OVERHEAD_FACTOR times as fast
    # as the dispatch ZVC compress pass it would steer (i.e. the
    # decision costs < 1% of the work it saves or schedules).
    for density_arg in sorted(set(policy_decide_bps) & set(zvc_dispatch_bps),
                              key=int):
        decide = policy_decide_bps[density_arg]
        compress = zvc_dispatch_bps[density_arg]
        if decide < POLICY_OVERHEAD_FACTOR * compress:
            fail(f"BM_AdaptivePolicyDecide/{density_arg} throughput "
                 f"({decide / 1e9:.1f} GB/s) is below "
                 f"{POLICY_OVERHEAD_FACTOR:.0f}x the same-density "
                 f"BM_ZvcCompress row ({compress / 1e9:.2f} GB/s): "
                 "codec selection has become a material fraction of the "
                 "compress pass")
    fleet_order = [fleet_contention[f] for f in FLEET_FAMILIES]
    if not all(a < b for a, b in zip(fleet_order, fleet_order[1:])):
        fail("fleet contention_stall_fraction is not strictly "
             "increasing across " + ", ".join(
                 f"{f}={fleet_contention[f]:.4f}" for f in FLEET_FAMILIES))
    if CRC_SCALAR_FAMILY not in seen_families:
        fail(f"{CRC_SCALAR_FAMILY} absent: the CRC framing row lost its "
             "scalar reference leg")
    context = report.get("context", {})
    if (CRC_HW_FAMILY not in seen_families
            and producer_supports(context, "avx2")):
        fail(f"{CRC_HW_FAMILY} absent although the producing host has "
             "the hardware CRC32C instruction")
    # avx512 rows are required exactly when the producing host can run
    # them (the gate tolerates their absence in reports from narrower
    # hosts); a capable host missing them lost half the trajectory.
    if producer_supports(context, "avx512"):
        for family in ("BM_ZvcCompressAvx512", "BM_ZvcDecompressAvx512"):
            if family not in seen_families:
                fail(f"{family} absent although the producing host has "
                     "AVX-512")

    # When an explicit per-backend sweep ran at all, its scalar leg must
    # be part of it (scalar is supported everywhere, so its absence means
    # the sweep was cut down in a way the trajectory would misread).
    # Compress and decompress sweeps are judged separately: a refactor
    # that drops only the BM_*Decompress{Scalar,Avx2,Avx512} mirrors
    # must not hide behind the compress families.
    backend_families = {f for f in seen_families
                        if f.endswith(("Scalar", "Avx2", "Avx512"))}
    decompress_backends = {f for f in backend_families
                           if "Decompress" in f}
    compress_backends = backend_families - decompress_backends
    for kind, families in (("compress", compress_backends),
                           ("decompress", decompress_backends)):
        if families and not any(f.endswith("Scalar") for f in families):
            fail(f"per-backend {kind} families present but the scalar "
                 f"reference leg is missing: {', '.join(sorted(families))}")

    summary = []
    for entry in benchmarks:
        if entry.get("run_type") == "aggregate":
            continue
        name = entry.get("name", "")
        family = name.split("/")[0]
        bps = entry.get("bytes_per_second")
        if (family in REQUIRED_FAMILIES and "/" in name
                and isinstance(bps, (int, float))):
            density = name.split("/")[1]
            summary.append(f"{family[3:]} d{density}: {bps / 1e9:.2f} GB/s")
    print(f"check_bench_json: OK ({len(benchmarks)} entries, "
          f"{len(seen_families)} families, dispatch={backend}, "
          f"duplex={duplex_mode})")
    for line in summary:
        print(f"  {line}")
    return backend


def row_backend(family: str) -> str:
    """Backend a family name pins, or '' for runtime-dispatch rows."""
    for suffix in BACKEND_SUFFIXES:
        if family.endswith(suffix):
            return suffix.lower() if suffix != "Hw" else "avx2"
    return ""


def throughput_rows(report: dict) -> dict:
    rows = {}
    for entry in report.get("benchmarks", []):
        if entry.get("run_type") == "aggregate":
            continue
        bps = entry.get("bytes_per_second")
        name = entry.get("name")
        if name and isinstance(bps, (int, float)) and bps > 0:
            rows[name] = bps
    return rows


def gate_regressions(baseline: dict, fresh: dict, tolerance: float,
                     allowed: list) -> tuple:
    """Compare per-row throughput; return (regressions, skipped, gated).

    regressions: list of (name, base_bps, fresh_bps) beyond tolerance.
    skipped: human-readable notes about rows not gated and why.
    gated: count of rows actually compared.
    """
    base_rows = throughput_rows(baseline)
    fresh_rows = throughput_rows(fresh)
    base_backend = baseline.get("context", {}).get("kernel_backend")
    fresh_backend = fresh.get("context", {}).get("kernel_backend")
    fresh_context = fresh.get("context", {})

    regressions, skipped = [], []
    gated = 0
    for name, base_bps in sorted(base_rows.items()):
        family = name.split("/")[0]
        if (DEFAULT_ALLOWED_REGRESSIONS.search(family)
                or family in allowed):
            skipped.append(f"{name}: allowlisted (measurement-only row)")
            continue
        pinned = row_backend(family)
        if not pinned and base_backend != fresh_backend:
            skipped.append(f"{name}: dispatch row, backends differ "
                           f"({base_backend} vs {fresh_backend})")
            continue
        if name not in fresh_rows:
            # Host difference (e.g. avx512 rows validated on a narrower
            # machine) is fine; a capable host losing the row is not.
            if pinned and not producer_supports(fresh_context, pinned):
                skipped.append(f"{name}: absent, host lacks {pinned}")
                continue
            regressions.append((name, base_bps, None))
            continue
        gated += 1
        if fresh_rows[name] < base_bps * (1.0 - tolerance):
            regressions.append((name, base_bps, fresh_rows[name]))
    return regressions, skipped, gated


def run_gate(baseline_path: str, fresh: dict, fresh_path: str,
             tolerance: float, allowed: list, verbose: bool) -> None:
    baseline = load_report(baseline_path)
    regressions, skipped, gated = gate_regressions(baseline, fresh,
                                                   tolerance, allowed)
    if verbose:
        for note in skipped:
            print(f"  skip {note}")
    print(f"check_bench_json: gate compared {gated} rows against "
          f"{baseline_path} (tolerance {tolerance:.0%}, "
          f"{len(skipped)} skipped)")
    if regressions:
        for name, base_bps, fresh_bps in regressions:
            if fresh_bps is None:
                print(f"  MISSING {name}: in baseline "
                      f"({base_bps / 1e9:.2f} GB/s) but not in "
                      f"{fresh_path}, and the host supports it",
                      file=sys.stderr)
            else:
                print(f"  REGRESSION {name}: {base_bps / 1e9:.2f} -> "
                      f"{fresh_bps / 1e9:.2f} GB/s "
                      f"({fresh_bps / base_bps:.2f}x)", file=sys.stderr)
        fail(f"{len(regressions)} benchmark row(s) regressed beyond "
             f"{tolerance:.0%} (use --allow-regression FAMILY for rows "
             "that are measurement-only on this host)")


def self_test(path: str, tolerance: float) -> None:
    """Prove the gate trips on an injected 2x slowdown (and only then)."""
    report = load_report(path)
    # Pick a gated row: serial, non-allowlisted, backend-pinned (so the
    # comparison never skips it for a dispatch mismatch).
    victim = None
    for entry in report.get("benchmarks", []):
        name = entry.get("name", "")
        family = name.split("/")[0]
        if (entry.get("run_type") != "aggregate"
                and isinstance(entry.get("bytes_per_second"), (int, float))
                and entry.get("bytes_per_second", 0) > 0
                and row_backend(family)
                and not DEFAULT_ALLOWED_REGRESSIONS.search(family)):
            victim = name
            break
    if victim is None:
        fail(f"self-test: no gateable per-backend row in {path}")

    slowed = copy.deepcopy(report)
    for entry in slowed["benchmarks"]:
        if entry.get("name") == victim:
            entry["bytes_per_second"] /= 2.0

    caught, _, _ = gate_regressions(report, slowed, tolerance, [])
    if not [r for r in caught if r[0] == victim]:
        fail(f"self-test: gate MISSED an injected 2x slowdown on "
             f"{victim} at tolerance {tolerance:.0%}")
    clean, _, gated = gate_regressions(report, copy.deepcopy(report),
                                       tolerance, [])
    if clean:
        fail("self-test: gate false-positived on an identical report: "
             + ", ".join(name for name, *_ in clean))
    if gated == 0:
        fail("self-test: gate compared zero rows of an identical report")
    print(f"check_bench_json: self-test OK (injected 2x slowdown on "
          f"{victim} caught at {tolerance:.0%}; identical report passes "
          f"{gated} rows)")


def main() -> None:
    parser = argparse.ArgumentParser(
        description="Validate (and optionally perf-gate) the kernel "
                    "throughput JSON.")
    parser.add_argument("report", nargs="?",
                        default="BENCH_kernel_throughput.json",
                        help="report to validate (the fresh run in gate "
                             "mode)")
    parser.add_argument("--baseline", metavar="PATH",
                        help="gate mode: fail on rows regressing beyond "
                             "the tolerance relative to this report "
                             "(typically the committed trajectory)")
    parser.add_argument("--regression-tolerance", type=float, default=0.25,
                        metavar="FRAC",
                        help="allowed fractional throughput drop per row "
                             "(default 0.25, tuned for the 1-core "
                             "container's ~13%% CV)")
    parser.add_argument("--allow-regression", action="append", default=[],
                        metavar="FAMILY",
                        help="additionally exempt this family from the "
                             "gate (repeatable); parallel fan-out and "
                             "fleet model rows are exempt by default")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the gate catches an injected 2x "
                             "slowdown in the report, then exit")
    parser.add_argument("--verbose", action="store_true",
                        help="explain every skipped row in gate mode")
    args = parser.parse_args()

    if not 0.0 <= args.regression_tolerance < 1.0:
        fail("--regression-tolerance must be in [0, 1)")
    if args.self_test:
        self_test(args.report, args.regression_tolerance)
        return

    report = load_report(args.report)
    check_schema(report, args.report)
    if args.baseline:
        run_gate(args.baseline, report, args.report,
                 args.regression_tolerance, args.allow_regression,
                 args.verbose)


if __name__ == "__main__":
    main()
