/** @file Unit tests for the LZ77 tokenizer. */

#include <string>

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "compress/lz77.hh"

namespace cdma {
namespace {

std::vector<uint8_t>
toBytes(const std::string &text)
{
    return {text.begin(), text.end()};
}

TEST(Lz77, EmptyInputNoTokens)
{
    EXPECT_TRUE(lz77Tokenize({}).empty());
}

TEST(Lz77, AllLiteralsWhenNoRepeats)
{
    const auto input = toBytes("abcdefg");
    const auto tokens = lz77Tokenize(input);
    EXPECT_EQ(tokens.size(), input.size());
    for (const auto &t : tokens)
        EXPECT_FALSE(t.is_match);
    EXPECT_EQ(lz77Reconstruct(tokens), input);
}

TEST(Lz77, FindsSimpleRepeat)
{
    const auto input = toBytes("abcabcabcabc");
    const auto tokens = lz77Tokenize(input);
    EXPECT_LT(tokens.size(), input.size());
    bool has_match = false;
    for (const auto &t : tokens)
        has_match |= t.is_match;
    EXPECT_TRUE(has_match);
    EXPECT_EQ(lz77Reconstruct(tokens), input);
}

TEST(Lz77, OverlappingMatchRunLengthStyle)
{
    // "aaaa...": after one literal, a match with distance 1 covers the
    // rest (the classic RLE-via-LZ trick).
    const std::vector<uint8_t> input(300, 'a');
    const auto tokens = lz77Tokenize(input);
    EXPECT_LE(tokens.size(), 4u);
    EXPECT_EQ(lz77Reconstruct(tokens), input);
}

TEST(Lz77, MatchLengthCapped)
{
    const std::vector<uint8_t> input(5000, 0);
    const auto tokens = lz77Tokenize(input);
    for (const auto &t : tokens) {
        if (t.is_match) {
            EXPECT_LE(t.length, 258);
        }
    }
    EXPECT_EQ(lz77Reconstruct(tokens), input);
}

TEST(Lz77, RespectsMaxDistance)
{
    Lz77Config config;
    config.max_distance = 16;
    // Repeat with period 64: matches would need distance 64 > 16, so the
    // matcher must not emit them.
    std::vector<uint8_t> input;
    for (int rep = 0; rep < 4; ++rep) {
        for (int i = 0; i < 64; ++i)
            input.push_back(static_cast<uint8_t>(i));
    }
    const auto tokens = lz77Tokenize(input, config);
    for (const auto &t : tokens) {
        if (t.is_match) {
            EXPECT_LE(t.distance, 16);
        }
    }
    EXPECT_EQ(lz77Reconstruct(tokens), input);
}

TEST(Lz77, ScratchReuseMatchesFreshTokenize)
{
    // The per-thread scratch path must produce exactly the tokens a
    // throwaway tokenize produces, including when the scratch is reused
    // across windows of different sizes (stale chain state must never
    // leak into a later window).
    Rng rng(77);
    Lz77Scratch scratch;
    for (const size_t bytes : {4096u, 100u, 4096u, 33u, 2000u}) {
        std::vector<uint8_t> input;
        input.reserve(bytes);
        while (input.size() < bytes) {
            if (rng.bernoulli(0.6)) {
                const size_t run = 1 + rng.uniformInt(64);
                const auto value = static_cast<uint8_t>(rng.uniformInt(8));
                input.insert(input.end(), run, value);
            } else {
                input.push_back(static_cast<uint8_t>(rng.uniformInt(256)));
            }
        }
        input.resize(bytes);
        const auto fresh = lz77Tokenize(input);
        const auto &reused = lz77TokenizeInto(input, {}, scratch);
        ASSERT_EQ(reused.size(), fresh.size()) << "bytes=" << bytes;
        for (size_t i = 0; i < fresh.size(); ++i) {
            EXPECT_EQ(reused[i].is_match, fresh[i].is_match);
            EXPECT_EQ(reused[i].literal, fresh[i].literal);
            EXPECT_EQ(reused[i].length, fresh[i].length);
            EXPECT_EQ(reused[i].distance, fresh[i].distance);
        }
        EXPECT_EQ(lz77Reconstruct(reused), input);
    }
}

class Lz77RandomRoundTrip : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(Lz77RandomRoundTrip, ReconstructionIsExact)
{
    Rng rng(GetParam());
    // Mix of compressible runs and incompressible noise.
    std::vector<uint8_t> input;
    while (input.size() < 20000) {
        if (rng.bernoulli(0.5)) {
            const size_t run = 1 + rng.uniformInt(400);
            const auto value = static_cast<uint8_t>(rng.uniformInt(4));
            input.insert(input.end(), run, value);
        } else {
            const size_t run = 1 + rng.uniformInt(100);
            for (size_t i = 0; i < run; ++i)
                input.push_back(static_cast<uint8_t>(rng.uniformInt(256)));
        }
    }
    const auto tokens = lz77Tokenize(input);
    EXPECT_EQ(lz77Reconstruct(tokens), input);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lz77RandomRoundTrip,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

} // namespace
} // namespace cdma
