#include "dnn/fc.hh"

#include <cmath>

#include "common/logging.hh"

namespace cdma {

FullyConnected::FullyConnected(std::string name, int64_t in_features,
                               int64_t out_features, Rng &rng)
    : Layer(std::move(name)), in_features_(in_features),
      out_features_(out_features),
      weights_(static_cast<size_t>(in_features * out_features)),
      bias_(static_cast<size_t>(out_features))
{
    CDMA_ASSERT(in_features > 0 && out_features > 0,
                "invalid fc dimensions for %s", this->name().c_str());
    const double stddev = std::sqrt(2.0 / static_cast<double>(in_features));
    for (auto &w : weights_.value)
        w = static_cast<float>(rng.normal(0.0, stddev));
}

Shape4D
FullyConnected::outputShape(const Shape4D &input) const
{
    CDMA_ASSERT(input.c * input.h * input.w == in_features_,
                "fc %s expects %lld features, got input %s",
                name().c_str(), static_cast<long long>(in_features_),
                input.str().c_str());
    return {input.n, out_features_, 1, 1};
}

Tensor4D
FullyConnected::forward(const Tensor4D &input)
{
    cached_input_ = input;
    const Shape4D out_shape = outputShape(input.shape());
    Tensor4D output(out_shape);

    // The NCHW linear storage of one sample is already the flattened
    // feature vector.
    auto in = input.data();
    auto out = output.data();
    for (int64_t n = 0; n < out_shape.n; ++n) {
        const float *x = in.data() + n * in_features_;
        float *y = out.data() + n * out_features_;
        for (int64_t o = 0; o < out_features_; ++o) {
            const float *w = weights_.value.data() + o * in_features_;
            float acc = bias_.value[static_cast<size_t>(o)];
            for (int64_t i = 0; i < in_features_; ++i)
                acc += w[i] * x[i];
            y[o] = acc;
        }
    }
    return output;
}

Tensor4D
FullyConnected::backward(const Tensor4D &output_grad)
{
    const Shape4D &in_shape = cached_input_.shape();
    Tensor4D input_grad(in_shape);

    auto x = cached_input_.data();
    auto dy = output_grad.data();
    auto dx = input_grad.data();

    for (int64_t n = 0; n < in_shape.n; ++n) {
        const float *x_row = x.data() + n * in_features_;
        const float *dy_row = dy.data() + n * out_features_;
        float *dx_row = dx.data() + n * in_features_;
        for (int64_t o = 0; o < out_features_; ++o) {
            const float g = dy_row[o];
            if (g == 0.0f)
                continue;
            float *dw = weights_.grad.data() + o * in_features_;
            const float *w = weights_.value.data() + o * in_features_;
            for (int64_t i = 0; i < in_features_; ++i) {
                dw[i] += g * x_row[i];
                dx_row[i] += g * w[i];
            }
            bias_.grad[static_cast<size_t>(o)] += g;
        }
    }
    return input_grad;
}

std::vector<ParamBlob *>
FullyConnected::params()
{
    return {&weights_, &bias_};
}

} // namespace cdma
