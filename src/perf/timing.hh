/**
 * @file
 * Analytic per-layer timing model standing in for measured cuDNN kernels
 * (DESIGN.md substitution table). Convolution-like layers are modeled as
 * compute-bound GEMMs whose efficiency improves with the cuDNN version
 * (the Figure 3a effect: v5 is ~2.2x v1 on average); FC layers are
 * roofline-limited by streaming their weight matrices from DRAM; pooling
 * and other cheap layers are bandwidth-bound. Backward propagation costs
 * roughly twice forward (data-gradient + weight-gradient GEMMs).
 */

#ifndef CDMA_PERF_TIMING_HH
#define CDMA_PERF_TIMING_HH

#include <array>
#include <string>

#include "gpu/gpu_spec.hh"
#include "models/desc.hh"

namespace cdma {

/** cuDNN library generations the paper sweeps (Figure 3). */
enum class CudnnVersion {
    V1,
    V2,
    V3,
    V4,
    V5,
};

/** All versions in release order. */
inline constexpr std::array<CudnnVersion, 5> kAllCudnnVersions = {
    CudnnVersion::V1, CudnnVersion::V2, CudnnVersion::V3,
    CudnnVersion::V4, CudnnVersion::V5};

/** Display name ("v1".."v5"). */
std::string cudnnVersionName(CudnnVersion version);

/** Forward/backward time of one layer. */
struct LayerTiming {
    double forward_seconds = 0.0;
    double backward_seconds = 0.0;

    double total() const { return forward_seconds + backward_seconds; }
};

/** Analytic layer timing model. */
class PerfModel
{
  public:
    explicit PerfModel(const GpuSpec &gpu = {});

    /** Timing of one descriptor row at the given batch and version. */
    LayerTiming layerTiming(const LayerDesc &layer, int64_t batch,
                            CudnnVersion version) const;

    /** Sum of layer timings over the whole network. */
    LayerTiming networkTiming(const NetworkDesc &network, int64_t batch,
                              CudnnVersion version) const;

    /**
     * GEMM efficiency (fraction of peak MACs) of conv-like layers under
     * @p version; the v5/v1 ratio calibrates Figure 3a's average 2.2x.
     */
    static double convEfficiency(CudnnVersion version);

  private:
    GpuSpec gpu_;
};

} // namespace cdma

#endif // CDMA_PERF_TIMING_HH
