/**
 * @file
 * Async double-buffered offload pipeline — the engine-side realization of
 * the paper's Section V-C dataflow, where the cDMA unit compresses
 * activation data into a bandwidth-delay-sized staging buffer while the
 * PCIe DMA unit drains the previously filled buffer. The scheduler drives
 * ParallelCompressor shard-by-shard on its thread pool (real bytes, real
 * compression, consumed in deterministic shard order) and runs a
 * discrete-event model of the staging pipeline on sim/EventQueue +
 * sim/Channel, so shard k+1's compression overlaps shard k's wire time.
 *
 * The timing model has two rules:
 *  - the compression engine is serial across shards and fetches raw bytes
 *    at COMP_BW (GpuSpec::comp_bandwidth);
 *  - a shard occupies one staging buffer from the moment its compression
 *    starts until its last byte leaves on the wire, and only
 *    staging_buffers (default 2) may be in flight at once.
 *
 * For uniform shards (compression time c, wire time w, n shards) the
 * resulting makespan has the closed form
 *
 *     overlapped = n * max(c, w) + min(c, w)
 *
 * — one fill of the shorter stage plus the longer stage at its full rate —
 * which tests/cdma/offload_scheduler_test.cc pins to 1e-9 relative error.
 */

#ifndef CDMA_CDMA_OFFLOAD_SCHEDULER_HH
#define CDMA_CDMA_OFFLOAD_SCHEDULER_HH

#include <span>
#include <vector>

#include "cdma/engine.hh"
#include "cdma/spill_arena.hh"

namespace cdma {

/** Byte counts of one staging shard entering the pipeline model. */
struct ShardTransfer {
    uint64_t raw_bytes = 0;  ///< uncompressed bytes the shard covers
    uint64_t wire_bytes = 0; ///< store-raw-floored bytes put on the wire
};

/** Outcome of one scheduled offload: data and modeled timing. */
struct OffloadResult {
    /** Compressed buffer, byte-identical to ParallelCompressor::compress. */
    CompressedBuffer buffer;
    /** Pipeline timing over the real per-shard compressed sizes. */
    OffloadTiming timing;
    /** Per-shard byte counts, in drain order. */
    std::vector<ShardTransfer> shards;
};

/** Outcome of an offload spilled into an arena instead of a buffer. */
struct SpilledOffload {
    /** Arena reference to the stored shards (caller releases it). */
    SpillTicket ticket = 0;
    /** Pipeline timing over the real per-shard compressed sizes. */
    OffloadTiming timing;
    /** Per-shard byte counts, in drain order. */
    std::vector<ShardTransfer> shards;
};

/**
 * Drives compression and models the double-buffered compress/transfer
 * pipeline for one cDMA engine.
 */
class OffloadScheduler
{
  public:
    explicit OffloadScheduler(const CdmaEngine &engine);

    /** Windows per staging shard (>= 1), from CdmaConfig::shard_bytes. */
    uint64_t shardWindows() const { return shard_windows_; }

    /**
     * Offload @p data: compress it shard-by-shard on the engine's lanes,
     * stitch the shards into a CompressedBuffer as they drain (in shard
     * order, while later shards are still compressing), and model the
     * double-buffered pipeline over the measured per-shard sizes.
     */
    OffloadResult offload(std::span<const uint8_t> data) const;

    /**
     * Offload @p data into @p arena: shards stream from the compression
     * lanes straight into recycled arena slots (no stitched
     * CompressedBuffer, no per-layer payload allocation in steady
     * state), modeling the same double-buffered pipeline. The returned
     * ticket holds the compressed activations until the backward pass
     * prefetches and releases them.
     */
    SpilledOffload offloadInto(std::span<const uint8_t> data,
                               SpillArena &arena) const;

    /**
     * Pipeline timing for a transfer of @p raw_bytes at a known
     * compression ratio (the analytic path): uniform staging shards at
     * ratio, a trailing partial shard when raw_bytes is not a multiple
     * of the shard size.
     *
     * Allocation-free closed form instead of a DES replay. For n uniform
     * shards (compression time c, wire time w) the double-buffered
     * makespan is n*max(c, w) + min(c, w); a trailing partial shard
     * (c_t <= c, w_t <= w) extends it to
     *
     *   wire-bound  (w >= c): c + n*w + w_t
     *   comp-bound  (c >  w): n*c + max(c_t, w) + w_t
     *
     * and one staging buffer degenerates to full serialization. The DES
     * (pipelineTiming) is kept as the reference; the tests pin equality
     * between the two paths to 1e-9 relative error.
     */
    OffloadTiming modelFromRatio(uint64_t raw_bytes, double ratio) const;

    /**
     * The core pipeline model: shard k's compression starts when the
     * compression engine is free AND a staging buffer is free (shard
     * k - staging_buffers + 1 has drained); its wire transfer starts when
     * its compression ends and the channel is free (FIFO). Runs on a
     * deterministic event queue; returns the aggregate timing.
     */
    static OffloadTiming pipelineTiming(std::span<const ShardTransfer> shards,
                                        double compress_bandwidth,
                                        double wire_bandwidth,
                                        unsigned staging_buffers = 2);

  private:
    const CdmaEngine &engine_;
    uint64_t shard_windows_;
};

} // namespace cdma

#endif // CDMA_CDMA_OFFLOAD_SCHEDULER_HH
