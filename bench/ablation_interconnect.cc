/**
 * @file
 * Section IX discussion: future CPU-GPU interconnects. Sweeps the
 * host-link bandwidth from PCIe gen3 (12.8 GB/s achieved) through a
 * multi-GPU NVLINK share (10-20 GB/s per GPU) up to a full NVLINK pipe
 * (80 GB/s) and reports vDNN overhead and cDMA-ZV speedup at each point.
 * The paper argues cDMA stays relevant because per-GPU shares of NVLINK
 * land right back in the PCIe regime — the sweep shows exactly where the
 * benefit fades.
 */

#include <cstdio>

#include "common/harness.hh"
#include "common/stats.hh"
#include "perf/step_sim.hh"

using namespace cdma;
using bench::Table;

int
main()
{
    std::printf("== Ablation: CPU-GPU link bandwidth (cuDNN v5, "
                "cDMA-ZV) ==\n");

    // Measure per-network ZVC ratios once (link-independent).
    std::vector<NetworkDesc> nets = allNetworkDescs();
    std::vector<std::vector<double>> ratios;
    for (const auto &net : nets) {
        const auto measured = bench::measureTimeAveragedRatios(
            net, Algorithm::Zvc, Layout::NCHW);
        std::vector<double> r;
        for (const auto &layer : measured.layers)
            r.push_back(layer.ratio);
        ratios.push_back(std::move(r));
    }

    Table table({"link GB/s", "avg vDNN loss", "avg cDMA speedup",
                 "worst-net speedup"});
    PerfModel perf;
    for (double gbps : {8.0, 12.8, 16.0, 20.0, 40.0, 80.0}) {
        Accumulator loss, speedup;
        double worst = 0.0;
        for (size_t n = 0; n < nets.size(); ++n) {
            VdnnMemoryManager manager(nets[n], nets[n].default_batch);
            CdmaConfig config;
            config.gpu.pcie_bandwidth = gbps * 1e9;
            config.gpu.pcie_effective_bandwidth = gbps * 1e9;
            CdmaEngine engine(config);
            StepSimulator sim(manager, engine, perf, CudnnVersion::V5);
            const StepResult oracle = sim.run(StepMode::Oracle);
            const StepResult vdnn = sim.run(StepMode::Vdnn);
            const StepResult cdma = sim.run(StepMode::Cdma, ratios[n]);
            loss.add(1.0 - oracle.total_seconds / vdnn.total_seconds);
            const double s = cdma.speedupOver(vdnn);
            speedup.add(s);
            worst = std::max(worst, s);
        }
        table.addRow({
            Table::num(gbps, 1),
            Table::num(100.0 * loss.mean(), 1) + "%",
            Table::num(100.0 * (speedup.mean() - 1.0), 1) + "%",
            Table::num(100.0 * (worst - 1.0), 1) + "%",
        });
    }
    table.print();
    std::printf("\n(10-20 GB/s = NVLINK shared across 4-8 GPUs: still "
                "firmly in cDMA territory; the benefit fades only at a "
                "dedicated 80 GB/s pipe)\n");
    return 0;
}
