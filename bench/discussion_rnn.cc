/**
 * @file
 * Section III discussion, made quantitative: cDMA applies to the
 * GEMV-based ReLU RNNs used for speech recognition (Deep Speech) but is
 * "less well-suited for RNNs based on LSTMs or GRUs, as they employ
 * sigmoid and tanh activation functions". Trains two identical Elman
 * RNNs — one ReLU, one tanh — on a synthetic sequence-classification
 * task and compresses their hidden-state sequences (the activations a
 * virtualized RNN trainer would offload) with all three codecs.
 */

#include <cstdio>

#include "common/harness.hh"
#include "dnn/fc.hh"
#include "dnn/loss.hh"
#include "dnn/rnn.hh"

using namespace cdma;
using bench::Table;

namespace {

/**
 * Synthetic sequence task: classify by which feature dimension carries
 * the strongest mean signal over time.
 */
Minibatch
makeSequenceBatch(Rng &rng, int64_t batch, int64_t steps,
                  int64_t features, int64_t classes)
{
    Minibatch out{Tensor4D(Shape4D{batch, steps, 1, features}),
                  std::vector<int>(static_cast<size_t>(batch), 0)};
    for (int64_t n = 0; n < batch; ++n) {
        const int label =
            static_cast<int>(rng.uniformInt(static_cast<uint64_t>(
                classes)));
        out.labels[static_cast<size_t>(n)] = label;
        for (int64_t t = 0; t < steps; ++t) {
            for (int64_t f = 0; f < features; ++f) {
                double v = rng.normal(0.0, 0.5);
                if (f % classes == label)
                    v += 1.0;
                out.images.at(n, t, 0, f) = static_cast<float>(v);
            }
        }
    }
    return out;
}

/** Train one RNN + classifier head; return the trained RNN states. */
Tensor4D
trainAndCapture(RnnActivation activation, double *final_accuracy)
{
    constexpr int64_t kBatch = 16, kSteps = 24, kFeatures = 16;
    constexpr int64_t kHidden = 48, kClasses = 4;
    constexpr int kIterations = 120;

    Rng rng(321);
    Rnn rnn("rnn", kFeatures, kHidden, activation, rng);
    // Classify from the last hidden state, flattened via FC over all
    // steps for simplicity.
    FullyConnected head("head", kSteps * kHidden, kClasses, rng);
    SoftmaxCrossEntropy loss;
    Rng data_rng(654);

    double accuracy = 0.0;
    for (int iter = 0; iter < kIterations; ++iter) {
        Minibatch batch = makeSequenceBatch(data_rng, kBatch, kSteps,
                                            kFeatures, kClasses);
        const Tensor4D states = rnn.forward(batch.images);
        const Tensor4D logits = head.forward(states);
        loss.forward(logits, batch.labels);
        accuracy = loss.accuracy();
        const Tensor4D dlogits = loss.backward();
        const Tensor4D dstates = head.backward(dlogits);
        rnn.backward(dstates);
        const SgdConfig sgd{0.05f, 0.9f, 0.0f};
        for (ParamBlob *blob : rnn.params()) {
            blob->apply(sgd);
            blob->clearGrad();
        }
        for (ParamBlob *blob : head.params()) {
            blob->apply(sgd);
            blob->clearGrad();
        }
    }
    *final_accuracy = accuracy;

    Minibatch batch = makeSequenceBatch(data_rng, kBatch, kSteps,
                                        kFeatures, kClasses);
    return rnn.forward(batch.images);
}

} // namespace

int
main()
{
    std::printf("== Section III: RNN hidden-state compressibility ==\n");
    Table table({"activation", "train acc", "state density", "RL", "ZV",
                 "ZL"});
    for (RnnActivation activation :
         {RnnActivation::ReLU, RnnActivation::Tanh}) {
        double accuracy = 0.0;
        const Tensor4D states = trainAndCapture(activation, &accuracy);
        std::vector<std::string> row = {
            activation == RnnActivation::ReLU ? "ReLU (Deep Speech)"
                                              : "tanh (LSTM-class)",
            Table::num(accuracy, 2),
            Table::num(states.density(), 2),
        };
        for (Algorithm algorithm : kAllAlgorithms) {
            const auto compressor = makeCompressor(algorithm);
            row.push_back(Table::num(
                compressor->measureRatio(states.rawBytes()), 2) + "x");
        }
        table.addRow(row);
    }
    table.print();
    std::printf("\n(ReLU RNN states compress like CNN activations; "
                "tanh states are never exactly zero, so cDMA buys "
                "~nothing — the paper's Section III claim)\n");
    return 0;
}
