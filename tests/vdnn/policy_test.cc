/** @file Unit tests for the vDNN offload-policy variants. */

#include <gtest/gtest.h>

#include "perf/step_sim.hh"
#include "vdnn/memory_manager.hh"

namespace cdma {
namespace {

TEST(OffloadPolicy, ConvOnlySchedulesSubset)
{
    const NetworkDesc net = alexNetDesc();
    VdnnMemoryManager all(net, 32, OffloadPolicy::All);
    VdnnMemoryManager conv(net, 32, OffloadPolicy::ConvOnly);
    EXPECT_EQ(all.offloadSchedule().size(), net.layers.size());
    EXPECT_LT(conv.offloadSchedule().size(),
              all.offloadSchedule().size());
    EXPECT_GT(conv.offloadSchedule().size(), 0u);
    EXPECT_LT(conv.totalOffloadBytes(), all.totalOffloadBytes());
}

TEST(OffloadPolicy, ConvOnlyTargetsConvLikeRows)
{
    const NetworkDesc net = googLeNetDesc();
    VdnnMemoryManager conv(net, 16, OffloadPolicy::ConvOnly);
    for (const auto &op : conv.offloadSchedule()) {
        const auto &kind = net.layers[op.layer_index].kind;
        EXPECT_TRUE(kind == "conv" || kind == "inception" ||
                    kind == "fire")
            << "row " << op.layer_index << " kind " << kind;
    }
}

TEST(OffloadPolicy, ConvOnlyKeepsMoreResident)
{
    const NetworkDesc net = vggDesc();
    VdnnMemoryManager all(net, net.default_batch, OffloadPolicy::All);
    VdnnMemoryManager conv(net, net.default_batch,
                           OffloadPolicy::ConvOnly);
    EXPECT_GT(conv.footprint().vdnn_peak, all.footprint().vdnn_peak);
}

TEST(OffloadPolicy, ConvOnlyIsFasterUnderVdnn)
{
    // Less traffic -> fewer stalls (the original vDNN trade-off).
    const NetworkDesc net = squeezeNetDesc();
    CdmaEngine engine(CdmaConfig{});
    PerfModel perf;

    VdnnMemoryManager all(net, net.default_batch, OffloadPolicy::All);
    VdnnMemoryManager conv(net, net.default_batch,
                           OffloadPolicy::ConvOnly);
    StepSimulator sim_all(all, engine, perf, CudnnVersion::V5);
    StepSimulator sim_conv(conv, engine, perf, CudnnVersion::V5);

    const double t_all = sim_all.run(StepMode::Vdnn).total_seconds;
    const double t_conv = sim_conv.run(StepMode::Vdnn).total_seconds;
    EXPECT_LT(t_conv, t_all);
}

TEST(OffloadPolicy, SparseScheduleRunsAllModes)
{
    const NetworkDesc net = ninDesc();
    VdnnMemoryManager conv(net, 32, OffloadPolicy::ConvOnly);
    CdmaEngine engine(CdmaConfig{});
    PerfModel perf;
    StepSimulator sim(conv, engine, perf, CudnnVersion::V5);

    const std::vector<double> ratios(net.layers.size(), 2.5);
    const StepResult oracle = sim.run(StepMode::Oracle);
    const StepResult vdnn = sim.run(StepMode::Vdnn);
    const StepResult cdma = sim.run(StepMode::Cdma, ratios);
    EXPECT_GE(vdnn.total_seconds, oracle.total_seconds - 1e-12);
    EXPECT_LE(cdma.total_seconds, vdnn.total_seconds + 1e-12);
}

TEST(OffloadPolicy, Names)
{
    EXPECT_EQ(offloadPolicyName(OffloadPolicy::All), "offload-all");
    EXPECT_EQ(offloadPolicyName(OffloadPolicy::ConvOnly),
              "offload-conv");
}

} // namespace
} // namespace cdma
