#include "gpu/zvc_engine.hh"

#include <cstring>

#include "common/bits.hh"
#include "common/logging.hh"

namespace cdma {

ZvcEngineResult
ZvcEngineModel::compress(std::span<const uint8_t> input) const
{
    CDMA_ASSERT(input.size() % kSectorBytes == 0,
                "engine input must be sector aligned, got %zu bytes",
                input.size());
    ZvcEngineResult result;
    const uint64_t sectors = input.size() / kSectorBytes;
    result.sectors = sectors;

    // The engine works line-by-line: per 128 B line it accumulates a mask
    // (8 bits per 32 B sector) and appends surviving words, exactly the
    // shift-and-append datapath of Figure 10(a).
    uint64_t offset = 0;
    while (offset < input.size()) {
        const uint64_t line =
            std::min<uint64_t>(kLineBytes, input.size() - offset);
        const uint64_t line_sectors = ceilDiv(line, kSectorBytes);

        uint32_t mask = 0;
        std::vector<uint8_t> packed;
        packed.reserve(line);
        int bit = 0;
        for (uint64_t s = 0; s < line_sectors; ++s) {
            const uint8_t *sector = input.data() + offset +
                s * kSectorBytes;
            // Stage 1: eight parallel zero comparators form mask bits;
            // stage 2's prefix sum drives the bubble-collapsing shifter,
            // which is what the packed append emulates.
            for (int w = 0; w < 8; ++w) {
                uint32_t word;
                std::memcpy(&word, sector + w * 4, 4);
                if (word != 0) {
                    mask |= 1u << bit;
                    packed.insert(packed.end(), sector + w * 4,
                                  sector + w * 4 + 4);
                }
                ++bit;
            }
        }
        // Stage 3: the mask and packed payload are appended to the
        // compressed line buffer.
        const size_t mask_pos = result.payload.size();
        result.payload.resize(mask_pos + sizeof(uint32_t));
        std::memcpy(result.payload.data() + mask_pos, &mask,
                    sizeof(uint32_t));
        result.payload.insert(result.payload.end(), packed.begin(),
                              packed.end());
        offset += line;
    }

    // One sector per cycle plus pipeline fill.
    result.cycles = sectors == 0 ? 0 : sectors + (kCompressStages - 1);
    return result;
}

ZvcEngineResult
ZvcEngineModel::decompress(std::span<const uint8_t> payload,
                           uint64_t original_bytes) const
{
    CDMA_ASSERT(original_bytes % kSectorBytes == 0,
                "engine output must be sector aligned, got %llu bytes",
                static_cast<unsigned long long>(original_bytes));
    ZvcEngineResult result;
    result.sectors = original_bytes / kSectorBytes;
    result.payload.reserve(original_bytes);

    size_t cursor = 0;
    uint64_t produced = 0;
    while (produced < original_bytes) {
        const uint64_t line =
            std::min<uint64_t>(kLineBytes, original_bytes - produced);
        const uint64_t line_sectors = ceilDiv(line, kSectorBytes);

        CDMA_ASSERT(cursor + sizeof(uint32_t) <= payload.size(),
                    "engine payload truncated before mask");
        uint32_t mask;
        std::memcpy(&mask, payload.data() + cursor, sizeof(uint32_t));
        cursor += sizeof(uint32_t);

        // One 8-bit mask segment per cycle: pop-count selects payload
        // words, the bubble-expanding shifter re-inserts zeros.
        for (uint64_t s = 0; s < line_sectors; ++s) {
            const auto segment =
                static_cast<uint8_t>((mask >> (8 * s)) & 0xFF);
            for (int w = 0; w < 8; ++w) {
                if ((segment >> w) & 1) {
                    CDMA_ASSERT(cursor + 4 <= payload.size(),
                                "engine payload truncated in data");
                    result.payload.insert(result.payload.end(),
                                          payload.data() + cursor,
                                          payload.data() + cursor + 4);
                    cursor += 4;
                } else {
                    result.payload.insert(result.payload.end(), 4, 0);
                }
            }
        }
        produced += line;
    }
    result.cycles =
        result.sectors == 0 ? 0 : result.sectors + kDecompressLatency;
    return result;
}

uint64_t
ZvcEngineModel::compressCycles(uint64_t bytes)
{
    const uint64_t sectors = ceilDiv(bytes, kSectorBytes);
    return sectors == 0 ? 0 : sectors + (kCompressStages - 1);
}

double
ZvcEngineModel::throughput(double clock_hz)
{
    return clock_hz * static_cast<double>(kSectorBytes);
}

} // namespace cdma
