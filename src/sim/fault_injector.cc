#include "sim/fault_injector.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace cdma::sim {

FaultInjector::FaultInjector(const FaultConfig &config)
    : config_(config), rng_(config.seed)
{
    CDMA_ASSERT(config.bit_flip_rate_per_byte >= 0.0 &&
                    config.bit_flip_rate_per_byte <= 1.0,
                "bit flip rate %g out of [0, 1]",
                config.bit_flip_rate_per_byte);
    CDMA_ASSERT(config.truncate_rate >= 0.0 && config.truncate_rate <= 1.0,
                "truncate rate %g out of [0, 1]", config.truncate_rate);
    CDMA_ASSERT(config.link_failure_rate >= 0.0 &&
                    config.link_failure_rate <= 1.0,
                "link failure rate %g out of [0, 1]",
                config.link_failure_rate);
}

void
FaultInjector::reset()
{
    rng_ = Rng(config_.seed);
    crossings_ = 0;
}

FaultOutcome
FaultInjector::sample(uint64_t payload_bytes)
{
    ++crossings_;
    FaultOutcome outcome;
    outcome.truncate_to = payload_bytes;

    if (config_.link_failure_rate > 0.0 &&
        rng_.bernoulli(config_.link_failure_rate)) {
        // Nothing lands; the other hazards are moot for this crossing.
        outcome.link_failed = true;
        return outcome;
    }

    if (config_.truncate_rate > 0.0 &&
        rng_.bernoulli(config_.truncate_rate) && payload_bytes > 0) {
        outcome.truncated = true;
        outcome.truncate_to = rng_.uniformInt(payload_bytes);
    }

    // Geometric-gap flip sampling: the gap to the next flipped byte is
    // floor(ln(u) / ln(1 - p)), so a clean multi-megabyte crossing costs
    // one draw, not one per byte. Flips beyond a truncation point never
    // arrive, so sample only the delivered prefix.
    const double p = config_.bit_flip_rate_per_byte;
    if (p > 0.0 && outcome.truncate_to > 0) {
        const double denom = std::log1p(-p);
        uint64_t offset = 0;
        while (outcome.flip_offsets.size() <
               config_.max_flips_per_transfer) {
            const double u = rng_.uniform();
            // u in [0, 1); guard the log against u == 0.
            const double gap_f =
                u > 0.0 ? std::floor(std::log(1.0 - u) / denom) : 0.0;
            const uint64_t gap = gap_f >= 1e18
                ? static_cast<uint64_t>(1) << 62
                : static_cast<uint64_t>(gap_f);
            if (offset + gap >= outcome.truncate_to)
                break;
            offset += gap;
            outcome.flip_offsets.push_back(offset);
            outcome.flip_masks.push_back(
                static_cast<uint8_t>(1u << rng_.uniformInt(8)));
            ++offset; // next gap is measured from the following byte
        }
    }
    return outcome;
}

double
FaultInjector::failureProbability(uint64_t payload_bytes) const
{
    // A crossing succeeds when the link stays up, the stream is not
    // truncated, and no byte flips. Flip survival is (1-p)^bytes,
    // computed in log space for stability at tiny rates.
    const double flip_ok = config_.bit_flip_rate_per_byte > 0.0
        ? std::exp(static_cast<double>(payload_bytes) *
                   std::log1p(-config_.bit_flip_rate_per_byte))
        : 1.0;
    const double ok = (1.0 - config_.link_failure_rate) *
        (1.0 - config_.truncate_rate) * flip_ok;
    return 1.0 - std::clamp(ok, 0.0, 1.0);
}

double
FaultInjector::expectedAttempts(uint64_t payload_bytes,
                                uint32_t max_attempts) const
{
    CDMA_ASSERT(max_attempts > 0, "at least one attempt is required");
    const double q = failureProbability(payload_bytes);
    // E[attempts] for a geometric capped at max_attempts:
    // sum_{k=0}^{max-1} q^k  (the k-th extra attempt happens with
    // probability q^k).
    double expected = 0.0;
    double qk = 1.0;
    for (uint32_t k = 0; k < max_attempts; ++k) {
        expected += qk;
        qk *= q;
    }
    return expected;
}

} // namespace cdma::sim
