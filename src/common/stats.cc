#include "common/stats.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.hh"

namespace cdma {

void
Accumulator::add(double sample)
{
    ++count_;
    sum_ += sample;
    const double delta = sample - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (sample - mean_);
    min_ = std::min(min_, sample);
    max_ = std::max(max_, sample);
}

double
Accumulator::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_);
}

double
Accumulator::stddev() const
{
    return std::sqrt(variance());
}

void
Accumulator::reset()
{
    *this = Accumulator();
}

void
WeightedMean::add(double sample, double weight)
{
    CDMA_ASSERT(weight >= 0.0, "negative weight %f", weight);
    weighted_sum_ += sample * weight;
    weight_ += weight;
}

double
WeightedMean::mean() const
{
    return weight_ > 0.0 ? weighted_sum_ / weight_ : 0.0;
}

Histogram::Histogram(double lo, double hi, size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0)
{
    CDMA_ASSERT(hi > lo, "histogram range [%f, %f) is empty", lo, hi);
    CDMA_ASSERT(bins > 0, "histogram needs at least one bin");
}

void
Histogram::add(double sample)
{
    const double span = hi_ - lo_;
    double pos = (sample - lo_) / span * static_cast<double>(counts_.size());
    auto index = static_cast<int64_t>(std::floor(pos));
    index = std::clamp<int64_t>(index, 0,
                                static_cast<int64_t>(counts_.size()) - 1);
    ++counts_[static_cast<size_t>(index)];
    ++total_;
}

double
Histogram::binLo(size_t index) const
{
    const double span = hi_ - lo_;
    return lo_ + span * static_cast<double>(index) /
        static_cast<double>(counts_.size());
}

LogHistogram::LogHistogram(double growth)
    : growth_(growth), inv_log_growth_(1.0 / std::log(growth))
{
    CDMA_ASSERT(growth > 1.0, "log histogram growth %f must exceed 1",
                growth);
}

int32_t
LogHistogram::bucketIndex(double sample) const
{
    if (sample <= 0.0)
        return kUnderflowBucket;
    return static_cast<int32_t>(std::floor(std::log(sample) *
                                           inv_log_growth_));
}

double
LogHistogram::bucketMid(int32_t index) const
{
    if (index == kUnderflowBucket)
        return std::min(0.0, min_);
    // Geometric midpoint of [growth^index, growth^(index+1)), clamped so
    // the representative never leaves the observed sample range.
    const double mid =
        std::pow(growth_, static_cast<double>(index) + 0.5);
    return std::clamp(mid, min_, max_);
}

void
LogHistogram::add(double sample)
{
    ++buckets_[bucketIndex(sample)];
    ++count_;
    sum_ += sample;
    min_ = std::min(min_, sample);
    max_ = std::max(max_, sample);
}

void
LogHistogram::merge(const LogHistogram &other)
{
    CDMA_ASSERT(growth_ == other.growth_,
                "cannot merge log histograms with growth %f and %f",
                growth_, other.growth_);
    for (const auto &[index, n] : other.buckets_)
        buckets_[index] += n;
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double
LogHistogram::percentile(double q) const
{
    CDMA_ASSERT(q >= 0.0 && q <= 1.0, "percentile %f outside [0, 1]", q);
    if (count_ == 0)
        return 0.0;
    const auto target = std::clamp<uint64_t>(
        static_cast<uint64_t>(
            std::ceil(q * static_cast<double>(count_))),
        1, count_);
    uint64_t seen = 0;
    for (const auto &[index, n] : buckets_) {
        seen += n;
        if (seen >= target)
            return bucketMid(index);
    }
    return max_; // unreachable: bucket counts sum to count_
}

std::string
Histogram::render(size_t width) const
{
    uint64_t peak = 1;
    for (uint64_t c : counts_)
        peak = std::max(peak, c);

    std::ostringstream out;
    for (size_t i = 0; i < counts_.size(); ++i) {
        const auto bar_len = static_cast<size_t>(
            static_cast<double>(counts_[i]) / static_cast<double>(peak) *
            static_cast<double>(width));
        out << "[" << binLo(i) << ", " << binLo(i + 1) << ") "
            << std::string(bar_len, '#') << " " << counts_[i] << "\n";
    }
    return out.str();
}

} // namespace cdma
