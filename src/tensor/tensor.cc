#include "tensor/tensor.hh"

#include <algorithm>
#include <cstring>

#include "common/logging.hh"

namespace cdma {

Tensor4D::Tensor4D() : Tensor4D(Shape4D{1, 1, 1, 1}, Layout::NCHW)
{
}

Tensor4D::Tensor4D(const Shape4D &shape, Layout layout)
    : shape_(shape), layout_(layout),
      data_(static_cast<size_t>(shape.elements()), 0.0f)
{
    CDMA_ASSERT(shape.n > 0 && shape.c > 0 && shape.h > 0 && shape.w > 0,
                "invalid tensor shape %s", shape.str().c_str());
}

float &
Tensor4D::at(int64_t n, int64_t c, int64_t h, int64_t w)
{
    return data_[static_cast<size_t>(
        linearIndex(shape_, layout_, n, c, h, w))];
}

float
Tensor4D::at(int64_t n, int64_t c, int64_t h, int64_t w) const
{
    return data_[static_cast<size_t>(
        linearIndex(shape_, layout_, n, c, h, w))];
}

std::span<const uint8_t>
Tensor4D::rawBytes() const
{
    return {reinterpret_cast<const uint8_t *>(data_.data()),
            data_.size() * sizeof(float)};
}

void
Tensor4D::fill(float value)
{
    std::fill(data_.begin(), data_.end(), value);
}

Tensor4D
Tensor4D::toLayout(Layout target) const
{
    if (target == layout_) {
        return *this;
    }
    Tensor4D out(shape_, target);
    for (int64_t n = 0; n < shape_.n; ++n) {
        for (int64_t c = 0; c < shape_.c; ++c) {
            for (int64_t h = 0; h < shape_.h; ++h) {
                for (int64_t w = 0; w < shape_.w; ++w) {
                    out.at(n, c, h, w) = at(n, c, h, w);
                }
            }
        }
    }
    return out;
}

double
Tensor4D::density() const
{
    if (data_.empty())
        return 0.0;
    return 1.0 - static_cast<double>(zeroCount()) /
        static_cast<double>(data_.size());
}

int64_t
Tensor4D::zeroCount() const
{
    int64_t zeros = 0;
    for (float v : data_) {
        if (v == 0.0f)
            ++zeros;
    }
    return zeros;
}

} // namespace cdma
