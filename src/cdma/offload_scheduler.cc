#include "cdma/offload_scheduler.hh"

#include <algorithm>

#include "common/logging.hh"

namespace cdma {

OffloadScheduler::OffloadScheduler(const CdmaEngine &engine)
    : engine_(engine)
{
}

OffloadResult
OffloadScheduler::offload(std::span<const uint8_t> data) const
{
    return engine_.offload(data);
}

StatusOr<SpilledOffload>
OffloadScheduler::offloadInto(std::span<const uint8_t> data,
                              SpillArena &arena) const
{
    return engine_.offloadInto(data, arena);
}

OffloadTiming
OffloadScheduler::modelFromRatio(uint64_t raw_bytes, double ratio) const
{
    CDMA_ASSERT(ratio >= 1.0, "ratio %f below store-raw floor", ratio);
    const CdmaConfig &config = engine_.cdma().config();
    const double comp_bw = config.gpu.comp_bandwidth;
    const double wire_bw = config.gpu.pcie_effective_bandwidth;
    const unsigned buffers = config.staging_buffers;
    const uint64_t shard_raw = shardWindows() * config.window_bytes;

    OffloadTiming timing;
    if (raw_bytes == 0)
        return timing;

    // Closed form over the shard shape the DES would replay: `full`
    // uniform shards of shard_raw bytes plus at most one partial tail.
    // The per-shard wire bytes reproduce the DES arithmetic exactly
    // (store-raw-floored truncation per shard).
    const uint64_t full = raw_bytes / shard_raw;
    const uint64_t tail_raw = raw_bytes % shard_raw;
    timing.shard_count = full + (tail_raw != 0 ? 1 : 0);

    const double c = static_cast<double>(shard_raw) / comp_bw;
    const double w = static_cast<double>(static_cast<uint64_t>(
                         static_cast<double>(shard_raw) / ratio)) /
        wire_bw;
    const double tail_c = static_cast<double>(tail_raw) / comp_bw;
    const double tail_w = static_cast<double>(static_cast<uint64_t>(
                              static_cast<double>(tail_raw) / ratio)) /
        wire_bw;

    const double n = static_cast<double>(full);
    timing.compress_seconds = n * c + tail_c;
    timing.wire_seconds = n * w + tail_w;

    if (buffers == 1) {
        // A single staging buffer serializes every shard end to end.
        timing.overlapped_seconds =
            timing.compress_seconds + timing.wire_seconds;
    } else if (full == 0) {
        // Tail-only transfer: one shard, nothing to overlap with.
        timing.overlapped_seconds = tail_c + tail_w;
    } else if (w >= c) {
        // Wire-bound: one compression fill, then the wire never starves
        // (the tail's compression hides under the previous shard's wire
        // time because tail_c <= c <= w).
        timing.overlapped_seconds = c + n * w + tail_w;
    } else {
        // Compression-bound (fetch-capped): the serial compression
        // engine paces the pipeline; the tail's wire leg waits for
        // whichever of its own compression or the previous shard's
        // drain finishes last.
        timing.overlapped_seconds =
            n * c + std::max(tail_c, w) + tail_w;
    }
    finalizeOverlapFraction(timing);
    return timing;
}

OffloadTiming
OffloadScheduler::pipelineTiming(std::span<const ShardTransfer> shards,
                                 double compress_bandwidth,
                                 double wire_bandwidth,
                                 unsigned staging_buffers)
{
    // The duplex DES with the prefetch direction idle: the shared link
    // degenerates to a single-direction FIFO, reproducing the original
    // offload-only event timeline exactly.
    return TransferEngine::pipelineTiming(
               shards, {}, compress_bandwidth, wire_bandwidth,
               /*decompress_bandwidth=*/compress_bandwidth,
               staging_buffers, DuplexMode::Half,
               LinkArbiter::RoundRobin)
        .offload;
}

} // namespace cdma
