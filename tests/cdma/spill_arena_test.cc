/**
 * @file
 * Tests for the compressed spill arena: round-trip identity through
 * store/materialize and through the offloadInto/prefetch streaming
 * path on every codec, slot recycling across simulated iterations
 * (slab allocation must plateau after the first), high-water-mark
 * accounting, and ticket lifecycle.
 */

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "cdma/transfer_engine.hh"
#include "common/rng.hh"
#include "compress/parallel.hh"

namespace cdma {
namespace {

/** ReLU-like fp32 words at the given density. */
std::vector<uint8_t>
makeInput(double density, size_t bytes, uint64_t seed)
{
    Rng rng(seed);
    std::vector<uint8_t> input(bytes, 0);
    const size_t words = bytes / 4;
    for (size_t i = 0; i < words; ++i) {
        if (density > 0.0 && rng.bernoulli(density)) {
            const float value =
                1.0f + static_cast<float>(std::abs(rng.normal()));
            std::memcpy(input.data() + i * 4, &value, 4);
        }
    }
    for (size_t i = words * 4; i < bytes; ++i)
        input[i] = static_cast<uint8_t>(1 + rng.uniformInt(255));
    return input;
}

CdmaEngine
makeEngine(Algorithm algorithm = Algorithm::Zvc, unsigned lanes = 2)
{
    CdmaConfig config;
    config.compression.algorithm = algorithm;
    config.compression.lanes = lanes;
    config.transfer.timing_mode = TimingMode::Overlapped;
    return CdmaEngine(config);
}

TEST(SpillArena, StoreAndMaterializeRoundTripsEveryCodec)
{
    for (const Algorithm algorithm : kAllAlgorithms) {
        const CdmaEngine engine = makeEngine(algorithm);
        const size_t bytes =
            algorithm == Algorithm::Zlib ? 16384 + 5 : (1 << 18) + 37;
        const auto input = makeInput(0.5, bytes, 61);
        const CompressedBuffer compressed =
            engine.compressor().compress(input);

        SpillArena arena;
        const SpillTicket ticket = arena.store(compressed, 5);
        EXPECT_EQ(arena.originalBytes(ticket), input.size());
        EXPECT_EQ(arena.windowBytes(ticket), compressed.window_bytes);
        EXPECT_EQ(arena.wireBytes(ticket), compressed.effectiveBytes());
        EXPECT_EQ(arena.payloadBytes(ticket), compressed.payload.size());

        const CompressedBuffer back = arena.materialize(ticket);
        EXPECT_EQ(back.payload, compressed.payload);
        EXPECT_EQ(back.window_sizes, compressed.window_sizes);
        EXPECT_EQ(engine.compressor().decompress(back).value(), input)
            << algorithmName(algorithm);
        arena.release(ticket);
    }
}

TEST(SpillArena, OffloadIntoMatchesTheStitchedOffload)
{
    const CdmaEngine engine = makeEngine();
    const OffloadScheduler scheduler(engine);
    const PrefetchScheduler prefetcher(engine);
    const auto input = makeInput(0.4, (1 << 20) + 123, 71);

    SpillArena arena;
    const SpilledOffload spilled = scheduler.offloadInto(input, arena).value();
    const OffloadResult reference = scheduler.offload(input);

    // Identical shard trains and identical modeled timing.
    ASSERT_EQ(spilled.shards.size(), reference.shards.size());
    for (size_t i = 0; i < spilled.shards.size(); ++i) {
        EXPECT_EQ(spilled.shards[i].raw_bytes,
                  reference.shards[i].raw_bytes);
        EXPECT_EQ(spilled.shards[i].wire_bytes,
                  reference.shards[i].wire_bytes);
    }
    EXPECT_DOUBLE_EQ(spilled.timing.overlapped_seconds,
                     reference.timing.overlapped_seconds);
    EXPECT_EQ(arena.shardCount(spilled.ticket),
              reference.shards.size());
    EXPECT_EQ(arena.wireBytes(spilled.ticket),
              reference.buffer.effectiveBytes());

    // The arena prefetch restores the original and models the mirrored
    // pipeline over the same shard train.
    const PrefetchResult restored =
        prefetcher.prefetch(arena, spilled.ticket).value();
    EXPECT_EQ(restored.data, input);
    const PrefetchResult via_buffer =
        prefetcher.prefetch(reference.buffer).value();
    EXPECT_EQ(via_buffer.data, input);
    EXPECT_DOUBLE_EQ(restored.timing.overlapped_seconds,
                     via_buffer.timing.overlapped_seconds);
    arena.release(spilled.ticket);
}

TEST(SpillArena, SlotRecyclingPlateausAfterTheFirstIteration)
{
    // A simulated multi-layer training loop: iteration 1 bump-allocates
    // slabs; every later iteration must be served entirely from
    // recycled slots and recycled tickets.
    const CdmaEngine engine = makeEngine();
    const OffloadScheduler scheduler(engine);
    const PrefetchScheduler prefetcher(engine);
    SpillArena arena;

    std::vector<std::vector<uint8_t>> layers;
    for (int i = 0; i < 5; ++i)
        layers.push_back(makeInput(0.2 + 0.15 * i,
                                   (100 + 40 * i) * 1024 + 7,
                                   200 + i));

    uint64_t slabs_after_first = 0;
    for (int iteration = 0; iteration < 4; ++iteration) {
        std::vector<SpillTicket> tickets;
        for (const auto &layer : layers)
            tickets.push_back(
                scheduler.offloadInto(layer, arena)->ticket);
        for (size_t i = tickets.size(); i-- > 0;) {
            const PrefetchResult restored =
                prefetcher.prefetch(arena, tickets[i]).value();
            EXPECT_EQ(restored.data, layers[i])
                << "iteration " << iteration << " layer " << i;
            arena.release(tickets[i]);
        }
        if (iteration == 0) {
            slabs_after_first = arena.stats().slab_allocations;
            EXPECT_GT(slabs_after_first, 0u);
        }
    }

    const SpillStats &stats = arena.stats();
    EXPECT_EQ(stats.slab_allocations, slabs_after_first)
        << "steady-state iterations must not allocate new slabs";
    EXPECT_GT(stats.reused_slots, 0u);
    EXPECT_EQ(stats.live_buffers, 0u);
    EXPECT_EQ(stats.live_payload_bytes, 0u);
    EXPECT_EQ(stats.live_slot_bytes, 0u);
    EXPECT_GT(stats.high_water_payload_bytes, 0u);
    EXPECT_GE(stats.high_water_slot_bytes,
              stats.high_water_payload_bytes);
}

TEST(SpillArena, HighWaterTracksConcurrentResidency)
{
    const CdmaEngine engine = makeEngine();
    const OffloadScheduler scheduler(engine);
    SpillArena arena;
    const auto a = makeInput(0.5, 300 * 1024, 11);
    const auto b = makeInput(0.5, 300 * 1024, 13);

    const SpillTicket ta = scheduler.offloadInto(a, arena)->ticket;
    const uint64_t one = arena.stats().live_payload_bytes;
    const SpillTicket tb = scheduler.offloadInto(b, arena)->ticket;
    const uint64_t both = arena.stats().live_payload_bytes;
    EXPECT_GT(both, one);
    EXPECT_EQ(arena.stats().high_water_payload_bytes, both);

    // Releasing one then storing again must not raise the high water
    // past the two-buffer peak (slots are recycled, residency is the
    // same).
    arena.release(ta);
    const SpillTicket tc = scheduler.offloadInto(a, arena)->ticket;
    EXPECT_EQ(arena.stats().high_water_payload_bytes, both);
    arena.release(tb);
    arena.release(tc);
    EXPECT_EQ(arena.stats().live_payload_bytes, 0u);
}

TEST(SpillArena, ShardViewsExposeTheStoredFraming)
{
    const CdmaEngine engine = makeEngine();
    const OffloadScheduler scheduler(engine);
    const auto input = makeInput(0.5, (1 << 19) + 37, 83);
    SpillArena arena;
    const SpilledOffload spilled = scheduler.offloadInto(input, arena).value();
    const CompressedBuffer reference =
        engine.compressor().compress(input);

    uint64_t window_cursor = 0;
    uint64_t payload_cursor = 0;
    for (size_t s = 0; s < arena.shardCount(spilled.ticket); ++s) {
        const SpillShardView view = arena.shard(spilled.ticket, s);
        EXPECT_EQ(view.first_window, window_cursor);
        for (size_t w = 0; w < view.window_sizes.size(); ++w) {
            EXPECT_EQ(view.window_sizes[w],
                      reference.window_sizes[window_cursor + w]);
        }
        ASSERT_LE(payload_cursor + view.payload.size(),
                  reference.payload.size());
        EXPECT_EQ(0, std::memcmp(view.payload.data(),
                                 reference.payload.data() + payload_cursor,
                                 view.payload.size()));
        window_cursor += view.window_sizes.size();
        payload_cursor += view.payload.size();
    }
    EXPECT_EQ(window_cursor, reference.window_sizes.size());
    EXPECT_EQ(payload_cursor, reference.payload.size());
    arena.release(spilled.ticket);
}

TEST(SpillArena, EmptyBufferSpills)
{
    const CdmaEngine engine = makeEngine();
    const OffloadScheduler scheduler(engine);
    const PrefetchScheduler prefetcher(engine);
    SpillArena arena;
    const SpilledOffload spilled = scheduler.offloadInto({}, arena).value();
    EXPECT_EQ(arena.shardCount(spilled.ticket), 0u);
    EXPECT_EQ(arena.originalBytes(spilled.ticket), 0u);
    const PrefetchResult restored =
        prefetcher.prefetch(arena, spilled.ticket).value();
    EXPECT_TRUE(restored.data.empty());
    EXPECT_EQ(restored.timing.shard_count, 0u);
    arena.release(spilled.ticket);
    EXPECT_EQ(arena.stats().live_buffers, 0u);
}

} // namespace
} // namespace cdma
