/** @file Unit tests for the run-length compressor. */

#include <cstring>

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "compress/rle.hh"

namespace cdma {
namespace {

std::vector<uint8_t>
wordsToBytes(const std::vector<float> &words)
{
    std::vector<uint8_t> bytes(words.size() * 4);
    std::memcpy(bytes.data(), words.data(), bytes.size());
    return bytes;
}

TEST(Rle, AllZeroWindowCompressesToTokens)
{
    // 128 zero words -> a single 1-byte zero-run token (512x for that
    // window).
    const std::vector<float> words(128, 0.0f);
    RleCompressor rle;
    const auto result = rle.compress(wordsToBytes(words));
    EXPECT_EQ(result.compressedBytes(), 1u);
}

TEST(Rle, DenseDataHasTokenOverheadOnly)
{
    std::vector<float> words(128);
    for (size_t i = 0; i < words.size(); ++i)
        words[i] = static_cast<float>(i + 1);
    RleCompressor rle;
    const auto result = rle.compress(wordsToBytes(words));
    // One literal token + 128 raw words.
    EXPECT_EQ(result.compressedBytes(), 1u + 128u * 4u);
}

TEST(Rle, ClusteredBeatsScatteredZeros)
{
    // The defining RLE property (opposite of ZVC): placement matters.
    constexpr size_t kWords = 4096;
    std::vector<float> clustered(kWords, 0.0f);
    std::vector<float> scattered(kWords, 0.0f);
    for (size_t i = 0; i < kWords / 2; ++i)
        clustered[kWords / 2 + i] = 3.0f;
    for (size_t i = 0; i < kWords; i += 2)
        scattered[i] = 3.0f;

    RleCompressor rle;
    const auto clustered_bytes =
        rle.compress(wordsToBytes(clustered)).compressedBytes();
    const auto scattered_bytes =
        rle.compress(wordsToBytes(scattered)).compressedBytes();
    // Clustered: zero half collapses to tokens, dense half ~4 B/word ->
    // ~8.2 KB. Scattered: 6 B per (zero, non-zero) pair -> ~12.3 KB.
    EXPECT_LT(static_cast<double>(clustered_bytes),
              static_cast<double>(scattered_bytes) * 0.75);
}

TEST(Rle, ScatteredZerosCanExpand)
{
    // Alternating zero/non-zero words: every pair costs 1 (zero token) +
    // 1 + 4 (literal token + word) = 6 bytes vs 8 raw, but single-word
    // literal runs in the worst interleavings can exceed the input; the
    // effectiveRatio fallback must clamp at 1.0.
    constexpr size_t kWords = 1024;
    std::vector<float> words(kWords, 1.0f);
    RleCompressor rle;
    for (size_t i = 0; i < kWords; i += 2)
        words[i] = 0.0f;
    const auto result = rle.compress(wordsToBytes(words));
    EXPECT_GE(result.effectiveRatio(), 1.0);
}

TEST(Rle, LongRunsSplitAtTokenLimit)
{
    // 1000 zero words need ceil(1000/128) = 8 tokens.
    const std::vector<float> words(1000, 0.0f);
    RleCompressor rle;
    const auto result = rle.compress(wordsToBytes(words));
    EXPECT_EQ(result.compressedBytes(), 8u);
}

TEST(Rle, RoundTripExactOnRandomData)
{
    Rng rng(71);
    std::vector<float> words(30000);
    for (auto &w : words)
        w = rng.bernoulli(0.6) ? 0.0f : static_cast<float>(rng.normal());
    const auto input = wordsToBytes(words);
    RleCompressor rle;
    EXPECT_EQ(rle.decompress(rle.compress(input)).value(), input);
}

TEST(Rle, RoundTripNonWordAlignedTail)
{
    Rng rng(73);
    std::vector<uint8_t> input(999);
    for (auto &b : input)
        b = static_cast<uint8_t>(rng.uniformInt(256));
    RleCompressor rle;
    EXPECT_EQ(rle.decompress(rle.compress(input)).value(), input);
}

TEST(Rle, EmptyInput)
{
    RleCompressor rle;
    const auto result = rle.compress({});
    EXPECT_EQ(result.compressedBytes(), 0u);
    EXPECT_TRUE(rle.decompress(result).value().empty());
}

} // namespace
} // namespace cdma
