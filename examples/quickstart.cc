/**
 * @file
 * Quickstart: the five-minute tour of the library. Generates a sparse
 * activation map, compresses it with each of the paper's three
 * algorithms, verifies losslessness, and asks the cDMA engine what the
 * transfer would cost over PCIe — the cudaMemcpyCompressed() workflow.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "cdma/engine.hh"
#include "common/rng.hh"
#include "compress/compressor.hh"
#include "sparsity/generator.hh"

using namespace cdma;

int
main()
{
    // 1. Make an activation map the way a ReLU layer would: 60% zeros,
    //    spatially clustered (Figure 5's statistics).
    ActivationGenerator generator;
    Rng rng(2024);
    const Tensor4D activations = generator.generate(
        Shape4D{4, 64, 55, 55}, Layout::NCHW, /*density=*/0.4, rng);
    std::printf("activation map %s: %.1f MB, density %.2f\n",
                activations.shape().str().c_str(),
                static_cast<double>(activations.bytes()) / 1e6,
                activations.density());

    // 2. Compress with RLE, ZVC and the DEFLATE-class upper bound.
    for (Algorithm algorithm : kAllAlgorithms) {
        const auto compressor = makeCompressor(algorithm);
        const auto compressed = compressor->compress(
            activations.rawBytes());
        const auto restored = compressor->decompress(compressed);
        const bool lossless = restored.ok() &&
            restored->size() == activations.rawBytes().size() &&
            std::equal(restored->begin(), restored->end(),
                       activations.rawBytes().begin());
        std::printf("  %s: ratio %.2fx (%7.1f KB on the wire), "
                    "lossless: %s\n",
                    compressor->name().c_str(),
                    compressed.effectiveRatio(),
                    static_cast<double>(compressed.effectiveBytes()) /
                        1024.0,
                    lossless ? "yes" : "NO");
    }

    // 3. Ask the cDMA engine for a transfer plan (ZVC, default GPU).
    CdmaConfig config;
    config.compression.algorithm = Algorithm::Zvc;
    CdmaEngine engine(config);
    const TransferPlan plan =
        engine.planTransfer("conv1", activations.rawBytes());
    std::printf("\ncDMA transfer plan for 'conv1':\n");
    std::printf("  raw %llu bytes -> wire %llu bytes (%.2fx)\n",
                static_cast<unsigned long long>(plan.raw_bytes),
                static_cast<unsigned long long>(plan.wire_bytes),
                plan.ratio);
    std::printf("  PCIe occupancy: %.3f ms (vDNN would take %.3f ms)\n",
                plan.seconds * 1e3,
                static_cast<double>(plan.raw_bytes) /
                    config.gpu.pcie_effective_bandwidth * 1e3);
    std::printf("  fetch bandwidth required: %.0f GB/s%s\n",
                plan.required_fetch_bandwidth / 1e9,
                plan.fetch_capped ? " (capped by COMP_BW!)" : "");
    return 0;
}
