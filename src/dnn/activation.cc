#include "dnn/activation.hh"

#include <cmath>

#include "common/logging.hh"

namespace cdma {

ReLU::ReLU(std::string name) : Layer(std::move(name))
{
}

Shape4D
ReLU::outputShape(const Shape4D &input) const
{
    return input;
}

Tensor4D
ReLU::forward(const Tensor4D &input)
{
    cached_shape_ = input.shape();
    Tensor4D output(input.shape(), input.layout());
    mask_.assign(static_cast<size_t>(input.elements()), 0);
    auto in = input.data();
    auto out = output.data();
    for (size_t i = 0; i < in.size(); ++i) {
        if (in[i] > 0.0f) {
            out[i] = in[i];
            mask_[i] = 1;
        }
    }
    return output;
}

Tensor4D
ReLU::backward(const Tensor4D &output_grad)
{
    CDMA_ASSERT(output_grad.shape() == cached_shape_,
                "relu %s backward shape mismatch", name().c_str());
    Tensor4D input_grad(output_grad.shape(), output_grad.layout());
    auto dy = output_grad.data();
    auto dx = input_grad.data();
    for (size_t i = 0; i < dy.size(); ++i)
        dx[i] = mask_[i] ? dy[i] : 0.0f;
    return input_grad;
}

Sigmoid::Sigmoid(std::string name) : Layer(std::move(name))
{
}

Shape4D
Sigmoid::outputShape(const Shape4D &input) const
{
    return input;
}

Tensor4D
Sigmoid::forward(const Tensor4D &input)
{
    Tensor4D output(input.shape(), input.layout());
    auto in = input.data();
    auto out = output.data();
    for (size_t i = 0; i < in.size(); ++i)
        out[i] = 1.0f / (1.0f + std::exp(-in[i]));
    cached_output_ = output;
    return output;
}

Tensor4D
Sigmoid::backward(const Tensor4D &output_grad)
{
    Tensor4D input_grad(output_grad.shape(), output_grad.layout());
    auto dy = output_grad.data();
    auto y = cached_output_.data();
    auto dx = input_grad.data();
    for (size_t i = 0; i < dy.size(); ++i)
        dx[i] = dy[i] * y[i] * (1.0f - y[i]);
    return input_grad;
}

Tanh::Tanh(std::string name) : Layer(std::move(name))
{
}

Shape4D
Tanh::outputShape(const Shape4D &input) const
{
    return input;
}

Tensor4D
Tanh::forward(const Tensor4D &input)
{
    Tensor4D output(input.shape(), input.layout());
    auto in = input.data();
    auto out = output.data();
    for (size_t i = 0; i < in.size(); ++i)
        out[i] = std::tanh(in[i]);
    cached_output_ = output;
    return output;
}

Tensor4D
Tanh::backward(const Tensor4D &output_grad)
{
    Tensor4D input_grad(output_grad.shape(), output_grad.layout());
    auto dy = output_grad.data();
    auto y = cached_output_.data();
    auto dx = input_grad.data();
    for (size_t i = 0; i < dy.size(); ++i)
        dx[i] = dy[i] * (1.0f - y[i] * y[i]);
    return input_grad;
}

} // namespace cdma
