/** @file Unit tests for the canonical Huffman codec. */

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "compress/huffman.hh"

namespace cdma {
namespace {

/** Kraft sum in units of 2^-max over the nonzero lengths. */
uint64_t
kraftSum(const std::vector<uint8_t> &lengths, int max_length)
{
    uint64_t k = 0;
    for (uint8_t len : lengths) {
        if (len)
            k += 1ull << (max_length - len);
    }
    return k;
}

TEST(Huffman, EmptyFrequencyTableGivesNoCodes)
{
    const auto lengths = buildCodeLengths({0, 0, 0}, 15);
    for (uint8_t len : lengths)
        EXPECT_EQ(len, 0);
}

TEST(Huffman, SingleSymbolGetsOneBit)
{
    const auto lengths = buildCodeLengths({0, 7, 0}, 15);
    EXPECT_EQ(lengths[1], 1);
    EXPECT_EQ(lengths[0], 0);
}

TEST(Huffman, FrequentSymbolsGetShorterCodes)
{
    const auto lengths = buildCodeLengths({1000, 10, 10, 10}, 15);
    EXPECT_LE(lengths[0], lengths[1]);
    EXPECT_LE(lengths[0], lengths[2]);
}

TEST(Huffman, LengthsSatisfyKraft)
{
    const auto lengths = buildCodeLengths({5, 9, 12, 13, 16, 45}, 15);
    EXPECT_LE(kraftSum(lengths, 15), 1ull << 15);
}

TEST(Huffman, LengthLimitIsEnforced)
{
    // Fibonacci-like frequencies force a maximally skewed tree whose raw
    // depths exceed small limits.
    std::vector<uint64_t> freqs;
    uint64_t a = 1, b = 1;
    for (int i = 0; i < 30; ++i) {
        freqs.push_back(a);
        const uint64_t next = a + b;
        a = b;
        b = next;
    }
    for (int limit : {8, 10, 15}) {
        const auto lengths = buildCodeLengths(freqs, limit);
        for (uint8_t len : lengths)
            EXPECT_LE(len, limit);
        EXPECT_LE(kraftSum(lengths, limit), 1ull << limit);
    }
}

TEST(Huffman, EncodeDecodeRoundTrip)
{
    const std::vector<uint64_t> freqs = {50, 30, 10, 5, 3, 2};
    const auto lengths = buildCodeLengths(freqs, 15);
    const HuffmanEncoder encoder(lengths);
    const HuffmanDecoder decoder(lengths);

    Rng rng(5);
    std::vector<int> symbols;
    BitWriter writer;
    for (int i = 0; i < 2000; ++i) {
        const int symbol = static_cast<int>(rng.uniformInt(freqs.size()));
        symbols.push_back(symbol);
        encoder.encode(writer, symbol);
    }
    const auto bytes = writer.finish();
    BitReader reader(bytes);
    for (int expected : symbols)
        EXPECT_EQ(decoder.decode(reader), expected);
}

TEST(Huffman, SingleSymbolStreamRoundTrips)
{
    const auto lengths = buildCodeLengths({0, 0, 42}, 15);
    const HuffmanEncoder encoder(lengths);
    const HuffmanDecoder decoder(lengths);
    BitWriter writer;
    for (int i = 0; i < 10; ++i)
        encoder.encode(writer, 2);
    const auto bytes = writer.finish();
    BitReader reader(bytes);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(decoder.decode(reader), 2);
}

TEST(Huffman, CompressionBeatsFixedWidthOnSkewedData)
{
    // 256-symbol alphabet, heavily skewed: entropy coding must beat the
    // 8-bit fixed-width baseline.
    std::vector<uint64_t> freqs(256, 1);
    freqs[0] = 100000;
    freqs[1] = 50000;
    const auto lengths = buildCodeLengths(freqs, 15);
    const HuffmanEncoder encoder(lengths);

    Rng rng(6);
    BitWriter writer;
    constexpr int kSymbols = 10000;
    for (int i = 0; i < kSymbols; ++i) {
        // ~2/3 zeros, ~1/3 ones, sprinkle of others: matches the skew.
        const double u = rng.uniform();
        int symbol;
        if (u < 0.65)
            symbol = 0;
        else if (u < 0.97)
            symbol = 1;
        else
            symbol = static_cast<int>(rng.uniformInt(256));
        encoder.encode(writer, symbol);
    }
    EXPECT_LT(writer.bitCount(), static_cast<uint64_t>(kSymbols) * 8 / 2);
}

TEST(Huffman, RebuiltDecoderMatchesFreshDecoder)
{
    // The per-thread DEFLATE decode scratch rebuilds one decoder per
    // alphabet per window; rebuilding in place must decode identically
    // to a freshly constructed decoder, across tables of different
    // shapes (including a shrinking live alphabet).
    HuffmanDecoder reused;
    Rng rng(77);
    for (int round = 0; round < 12; ++round) {
        const size_t alphabet = 2 + rng.uniformInt(286);
        std::vector<uint64_t> freqs(alphabet, 0);
        // Sparser alphabets on later rounds: the reused tables shrink.
        const size_t live = 2 + rng.uniformInt(alphabet - 1);
        for (size_t i = 0; i < live; ++i)
            freqs[rng.uniformInt(alphabet)] += 1 + rng.uniformInt(500);
        freqs[0] += 1;
        freqs[alphabet - 1] += 1;

        const auto lengths = buildCodeLengths(freqs, 15);
        const HuffmanEncoder encoder(lengths);
        const HuffmanDecoder fresh(lengths);
        reused.rebuild(lengths);

        std::vector<int> usable;
        for (size_t s = 0; s < alphabet; ++s) {
            if (freqs[s])
                usable.push_back(static_cast<int>(s));
        }
        BitWriter writer;
        std::vector<int> sent;
        for (int i = 0; i < 300; ++i) {
            const int symbol = usable[rng.uniformInt(usable.size())];
            sent.push_back(symbol);
            encoder.encode(writer, symbol);
        }
        const auto bytes = writer.finish();
        BitReader fresh_reader(bytes);
        BitReader reused_reader(bytes);
        for (int expected : sent) {
            EXPECT_EQ(fresh.decode(fresh_reader), expected);
            EXPECT_EQ(reused.decode(reused_reader), expected);
        }
    }
}

class HuffmanRandomRoundTrip : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(HuffmanRandomRoundTrip, ArbitraryFrequencyTables)
{
    Rng rng(GetParam());
    const size_t alphabet = 2 + rng.uniformInt(300);
    std::vector<uint64_t> freqs(alphabet);
    for (auto &f : freqs)
        f = rng.uniformInt(1000); // zeros allowed
    // Ensure at least two usable symbols.
    freqs[0] += 1;
    freqs[1] += 1;

    const auto lengths = buildCodeLengths(freqs, 15);
    EXPECT_LE(kraftSum(lengths, 15), 1ull << 15);

    const HuffmanEncoder encoder(lengths);
    const HuffmanDecoder decoder(lengths);
    std::vector<int> usable;
    for (size_t s = 0; s < alphabet; ++s) {
        if (freqs[s])
            usable.push_back(static_cast<int>(s));
    }
    BitWriter writer;
    std::vector<int> sent;
    for (int i = 0; i < 500; ++i) {
        const int symbol =
            usable[rng.uniformInt(usable.size())];
        sent.push_back(symbol);
        encoder.encode(writer, symbol);
    }
    const auto bytes = writer.finish();
    BitReader reader(bytes);
    for (int expected : sent)
        EXPECT_EQ(decoder.decode(reader), expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HuffmanRandomRoundTrip,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

} // namespace
} // namespace cdma
