#include "compress/lz77.hh"

#include <algorithm>
#include <cstdint>
#include <limits>

#include "common/logging.hh"
#include "compress/kernels/kernels.hh"

namespace cdma {

namespace {

constexpr int kHashBits = 15;
constexpr size_t kHashSize = 1u << kHashBits;

uint32_t
hash3(const uint8_t *p)
{
    // Multiplicative hash of a 3-byte prefix.
    const uint32_t v = static_cast<uint32_t>(p[0]) |
        (static_cast<uint32_t>(p[1]) << 8) |
        (static_cast<uint32_t>(p[2]) << 16);
    return (v * 2654435761u) >> (32 - kHashBits);
}

} // namespace

const std::vector<Lz77Token> &
lz77TokenizeInto(std::span<const uint8_t> input, const Lz77Config &config,
                 Lz77Scratch &scratch, const KernelOps *kernels)
{
    const KernelOps &kernel =
        kernels != nullptr ? *kernels : activeKernels();
    const size_t n = input.size();
    CDMA_ASSERT(n <= static_cast<size_t>(
                         std::numeric_limits<int32_t>::max()),
                "LZ77 window of %zu bytes overflows the 32-bit chain "
                "positions", n);

    std::vector<Lz77Token> &tokens = scratch.tokens;
    tokens.clear();
    tokens.reserve(n / 4 + 16);
    // head is re-filled in place; prev entries are only ever read after
    // being written through a chain rooted in the fresh head, so stale
    // values from a previous window are never observed.
    scratch.head.assign(kHashSize, -1);
    if (scratch.prev.size() < n)
        scratch.prev.resize(n);
    int32_t *head = scratch.head.data();
    int32_t *prev = scratch.prev.data();

    size_t pos = 0;
    while (pos < n) {
        uint16_t best_len = 0;
        uint32_t best_dist = 0;

        if (pos + config.min_match <= n && n - pos >= 3) {
            const uint32_t h = hash3(input.data() + pos);
            int32_t candidate = head[h];
            int chain = config.max_chain;
            const size_t max_len = std::min<size_t>(config.max_match,
                                                    n - pos);
            while (candidate >= 0 && chain-- > 0) {
                const auto dist =
                    static_cast<uint32_t>(pos - static_cast<size_t>(
                        candidate));
                if (dist > config.max_distance)
                    break;
                const size_t len = kernel.matchLength(
                    input.data() + candidate, input.data() + pos,
                    max_len);
                if (len >= config.min_match && len > best_len) {
                    best_len = static_cast<uint16_t>(len);
                    best_dist = dist;
                    if (len == max_len)
                        break;
                }
                candidate = prev[candidate];
            }
        }

        if (best_len >= config.min_match) {
            tokens.push_back({true, 0, best_len,
                              static_cast<uint16_t>(best_dist)});
            // Insert every covered position into the hash chains so later
            // matches can reference the interior of this match.
            const size_t end = pos + best_len;
            while (pos < end) {
                if (pos + 3 <= n) {
                    const uint32_t h = hash3(input.data() + pos);
                    prev[pos] = head[h];
                    head[h] = static_cast<int32_t>(pos);
                }
                ++pos;
            }
        } else {
            if (pos + 3 <= n) {
                const uint32_t h = hash3(input.data() + pos);
                prev[pos] = head[h];
                head[h] = static_cast<int32_t>(pos);
            }
            tokens.push_back({false, input[pos], 0, 0});
            ++pos;
        }
    }
    return tokens;
}

std::vector<Lz77Token>
lz77Tokenize(std::span<const uint8_t> input, const Lz77Config &config)
{
    Lz77Scratch scratch;
    lz77TokenizeInto(input, config, scratch);
    return std::move(scratch.tokens);
}

std::vector<uint8_t>
lz77Reconstruct(const std::vector<Lz77Token> &tokens)
{
    std::vector<uint8_t> out;
    for (const auto &token : tokens) {
        if (!token.is_match) {
            out.push_back(token.literal);
            continue;
        }
        CDMA_ASSERT(token.distance > 0 && token.distance <= out.size(),
                    "LZ77 match distance %u exceeds history %zu",
                    token.distance, out.size());
        // Byte-by-byte copy: overlapping matches (distance < length)
        // intentionally replicate recent output, as in DEFLATE.
        size_t src = out.size() - token.distance;
        for (uint16_t i = 0; i < token.length; ++i)
            out.push_back(out[src + i]);
    }
    return out;
}

} // namespace cdma
