#include "obs/metrics.hh"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/logging.hh"

namespace cdma::obs {

namespace {

uint64_t
nowNanos()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

std::string
formatDouble(double value)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    return buf;
}

} // namespace

void
HistogramMetric::record(double sample)
{
    std::lock_guard<std::mutex> lock(mu_);
    hist_.add(sample);
}

void
HistogramMetric::merge(const LogHistogram &other)
{
    std::lock_guard<std::mutex> lock(mu_);
    hist_.merge(other);
}

uint64_t
HistogramMetric::count() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return hist_.count();
}

double
HistogramMetric::mean() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return hist_.mean();
}

double
HistogramMetric::min() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return hist_.min();
}

double
HistogramMetric::max() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return hist_.max();
}

double
HistogramMetric::percentile(double q) const
{
    std::lock_guard<std::mutex> lock(mu_);
    return hist_.percentile(q);
}

LogHistogram
HistogramMetric::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return hist_;
}

ScopedTimer::ScopedTimer(HistogramMetric *target) : target_(target)
{
    if (target_ != nullptr)
        start_ns_ = nowNanos();
}

ScopedTimer::~ScopedTimer()
{
    if (target_ != nullptr)
        target_->record(static_cast<double>(nowNanos() - start_ns_) * 1e-9);
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto &slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto &slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

HistogramMetric &
MetricsRegistry::histogram(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto &slot = histograms_[name];
    if (!slot)
        slot = std::make_unique<HistogramMetric>();
    return *slot;
}

std::string
MetricsRegistry::toJson() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::string out = "{\n  \"counters\": {";
    bool first = true;
    for (const auto &[name, c] : counters_) {
        if (!first)
            out += ",";
        first = false;
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(c->value()));
        out += "\n    \"" + name + "\": " + buf;
    }
    out += first ? "},\n" : "\n  },\n";

    out += "  \"gauges\": {";
    first = true;
    for (const auto &[name, g] : gauges_) {
        if (!first)
            out += ",";
        first = false;
        out += "\n    \"" + name + "\": " + formatDouble(g->value());
    }
    out += first ? "},\n" : "\n  },\n";

    out += "  \"histograms\": {";
    first = true;
    for (const auto &[name, h] : histograms_) {
        if (!first)
            out += ",";
        first = false;
        const LogHistogram hist = h->snapshot();
        char count[32];
        std::snprintf(count, sizeof(count), "%llu",
                      static_cast<unsigned long long>(hist.count()));
        out += "\n    \"" + name + "\": {\"count\": " + count +
            ", \"mean\": " + formatDouble(hist.mean()) +
            ", \"min\": " + formatDouble(hist.count() ? hist.min() : 0.0) +
            ", \"max\": " + formatDouble(hist.count() ? hist.max() : 0.0) +
            ", \"p50\": " + formatDouble(hist.percentile(0.50)) +
            ", \"p95\": " + formatDouble(hist.percentile(0.95)) +
            ", \"p99\": " + formatDouble(hist.percentile(0.99)) + "}";
    }
    out += first ? "}\n" : "\n  }\n";
    out += "}\n";
    return out;
}

std::string
MetricsRegistry::render() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::ostringstream out;
    for (const auto &[name, c] : counters_)
        out << name << " = " << c->value() << "\n";
    for (const auto &[name, g] : gauges_)
        out << name << " = " << formatDouble(g->value()) << "\n";
    for (const auto &[name, h] : histograms_) {
        const LogHistogram hist = h->snapshot();
        out << name << ": count=" << hist.count()
            << " mean=" << formatDouble(hist.mean())
            << " p50=" << formatDouble(hist.percentile(0.50))
            << " p95=" << formatDouble(hist.percentile(0.95))
            << " p99=" << formatDouble(hist.percentile(0.99)) << "\n";
    }
    return out.str();
}

void
MetricsRegistry::writeFileOrDie(const std::string &path) const
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        fatal("cannot open metrics output '%s'", path.c_str());
    out << toJson();
    out.flush();
    if (!out)
        fatal("failed writing metrics output '%s'", path.c_str());
}

} // namespace cdma::obs
