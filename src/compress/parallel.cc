#include "compress/parallel.hh"

#include <algorithm>
#include <cstring>

#include "common/bits.hh"
#include "common/logging.hh"

namespace cdma {

ParallelCompressor::ParallelCompressor(Algorithm algorithm,
                                       uint64_t window_bytes,
                                       unsigned lanes)
    : ParallelCompressor(makeCompressor(algorithm, window_bytes), lanes)
{
}

ParallelCompressor::ParallelCompressor(std::unique_ptr<Compressor> codec,
                                       unsigned lanes)
    : codec_(std::move(codec))
{
    CDMA_ASSERT(codec_ != nullptr, "ParallelCompressor needs a codec");
    if (lanes != 1)
        pool_ = std::make_unique<ThreadPool>(lanes);
}

CompressedBuffer
ParallelCompressor::compress(std::span<const uint8_t> input) const
{
    const uint64_t window_bytes = codec_->windowBytes();
    const uint64_t windows = ceilDiv(input.size(), window_bytes);
    // Fan-out only pays when there is enough work per lane; small buffers
    // (and the lanes == 1 configuration) take the serial path directly.
    if (!pool_ || windows < 2)
        return codec_->compress(input);

    const uint64_t per_shard =
        ceilDiv(windows, std::min<uint64_t>(pool_->lanes(), windows));
    // Rounding per_shard up can make trailing shards redundant; recompute
    // the count so every shard owns at least one window.
    const uint64_t shards = ceilDiv(windows, per_shard);

    struct Shard {
        std::vector<uint8_t> payload;
        std::vector<uint32_t> window_sizes;
    };
    std::vector<Shard> results(shards);

    pool_->parallelFor(shards, [&](uint64_t s) {
        const uint64_t first = s * per_shard;
        const uint64_t last = std::min(windows, first + per_shard);
        Shard &shard = results[s];
        shard.window_sizes.reserve(last - first);
        // Reserve the shard's worst case once; every window then streams
        // in with zero further allocation.
        uint64_t bound = 0;
        for (uint64_t w = first; w < last; ++w) {
            const uint64_t offset = w * window_bytes;
            bound += codec_->compressedBound(
                std::min<uint64_t>(window_bytes, input.size() - offset));
        }
        shard.payload.reserve(bound);
        for (uint64_t w = first; w < last; ++w) {
            const uint64_t offset = w * window_bytes;
            const uint64_t len =
                std::min<uint64_t>(window_bytes, input.size() - offset);
            const size_t before = shard.payload.size();
            codec_->compressWindowInto(input.subspan(offset, len),
                                       shard.payload);
            shard.window_sizes.push_back(
                static_cast<uint32_t>(shard.payload.size() - before));
        }
    });

    // Stitch: sizes are known, so the shared buffers are sized exactly
    // once and shard payloads land with bulk copies.
    CompressedBuffer out;
    out.original_bytes = input.size();
    out.window_bytes = window_bytes;
    uint64_t payload_total = 0;
    for (const Shard &shard : results)
        payload_total += shard.payload.size();
    out.payload.resize(payload_total);
    out.window_sizes.reserve(windows);
    uint64_t cursor = 0;
    for (const Shard &shard : results) {
        std::memcpy(out.payload.data() + cursor, shard.payload.data(),
                    shard.payload.size());
        cursor += shard.payload.size();
        out.window_sizes.insert(out.window_sizes.end(),
                                shard.window_sizes.begin(),
                                shard.window_sizes.end());
    }
    return out;
}

std::vector<uint8_t>
ParallelCompressor::decompress(const CompressedBuffer &buffer) const
{
    const uint64_t windows = buffer.window_sizes.size();
    if (!pool_ || windows < 2)
        return codec_->decompress(buffer);

    CDMA_ASSERT(windows == ceilDiv(buffer.original_bytes,
                                   buffer.window_bytes),
                "window count inconsistent with original size");

    // Per-window payload offsets (prefix sum), so every window can be
    // decompressed independently straight into its output slot.
    std::vector<uint64_t> offsets(windows + 1, 0);
    for (uint64_t w = 0; w < windows; ++w)
        offsets[w + 1] = offsets[w] + buffer.window_sizes[w];
    CDMA_ASSERT(offsets[windows] == buffer.payload.size(),
                "window sizes do not cover the payload");

    std::vector<uint8_t> out(buffer.original_bytes);
    const uint64_t per_shard =
        ceilDiv(windows, std::min<uint64_t>(pool_->lanes(), windows));
    const uint64_t shards = ceilDiv(windows, per_shard);

    pool_->parallelFor(shards, [&](uint64_t s) {
        const uint64_t first = s * per_shard;
        const uint64_t last = std::min(windows, first + per_shard);
        for (uint64_t w = first; w < last; ++w) {
            const uint64_t out_offset = w * buffer.window_bytes;
            const uint64_t raw = std::min<uint64_t>(
                buffer.window_bytes, buffer.original_bytes - out_offset);
            codec_->decompressWindowInto(
                std::span<const uint8_t>(
                    buffer.payload.data() + offsets[w],
                    buffer.window_sizes[w]),
                raw, out.data() + out_offset);
        }
    });
    return out;
}

double
ParallelCompressor::measureRatio(std::span<const uint8_t> input) const
{
    return compress(input).effectiveRatio();
}

} // namespace cdma
