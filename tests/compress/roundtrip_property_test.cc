/**
 * @file
 * Property tests shared by all compressors: losslessness on adversarial
 * and realistic inputs, framing integrity, and the paper's cross-algorithm
 * invariants (ZVC layout insensitivity vs RLE sensitivity).
 */

#include <cstring>
#include <tuple>

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "compress/compressor.hh"

namespace cdma {
namespace {

/** Generates one of several adversarial byte-stream families. */
std::vector<uint8_t>
makeInput(int family, uint64_t seed, size_t size)
{
    Rng rng(seed);
    std::vector<uint8_t> input;
    input.reserve(size);
    switch (family) {
      case 0: // all zero
        input.assign(size, 0);
        break;
      case 1: // uniform random
        for (size_t i = 0; i < size; ++i)
            input.push_back(static_cast<uint8_t>(rng.uniformInt(256)));
        break;
      case 2: // sparse fp32 words, ReLU-like
        {
            std::vector<float> words(size / 4 + 1);
            for (auto &w : words) {
                w = rng.bernoulli(0.4)
                    ? static_cast<float>(std::abs(rng.normal())) : 0.0f;
            }
            input.resize(size);
            // size == 0 leaves data() null; memcpy's pointer arguments
            // must be non-null even for zero lengths (UBSan enforces).
            if (size > 0)
                std::memcpy(input.data(), words.data(), size);
        }
        break;
      case 3: // long alternating runs
        while (input.size() < size) {
            const size_t run = 1 + rng.uniformInt(1000);
            const uint8_t value = rng.bernoulli(0.5) ? 0 : 0xA5;
            for (size_t i = 0; i < run && input.size() < size; ++i)
                input.push_back(value);
        }
        break;
      default: // single repeated byte
        input.assign(size, 0x42);
        break;
    }
    input.resize(size);
    return input;
}

using PropertyParam = std::tuple<Algorithm, int /*family*/,
                                 size_t /*size*/>;

class CompressorProperty : public ::testing::TestWithParam<PropertyParam>
{
};

TEST_P(CompressorProperty, LosslessRoundTrip)
{
    auto [algorithm, family, size] = GetParam();
    const auto input = makeInput(family, 1000 + family, size);
    const auto compressor = makeCompressor(algorithm);
    const auto compressed = compressor->compress(input);
    EXPECT_EQ(compressor->decompress(compressed).value(), input);
}

TEST_P(CompressorProperty, FramingAccountsForEveryWindow)
{
    auto [algorithm, family, size] = GetParam();
    const auto input = makeInput(family, 2000 + family, size);
    const auto compressor = makeCompressor(algorithm);
    const auto compressed = compressor->compress(input);

    const uint64_t window = compressor->windowBytes();
    EXPECT_EQ(compressed.window_sizes.size(),
              (input.size() + window - 1) / window);
    uint64_t payload_total = 0;
    for (uint32_t s : compressed.window_sizes)
        payload_total += s;
    EXPECT_EQ(payload_total, compressed.payload.size());
    EXPECT_EQ(compressed.original_bytes, input.size());
}

TEST_P(CompressorProperty, EffectiveBytesNeverExceedRaw)
{
    auto [algorithm, family, size] = GetParam();
    const auto input = makeInput(family, 3000 + family, size);
    const auto compressor = makeCompressor(algorithm);
    const auto compressed = compressor->compress(input);
    EXPECT_LE(compressed.effectiveBytes(), input.size());
    if (!input.empty()) {
        EXPECT_GE(compressed.effectiveRatio(), 1.0);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithmsFamiliesSizes, CompressorProperty,
    ::testing::Combine(
        ::testing::Values(Algorithm::Rle, Algorithm::Zvc, Algorithm::Zlib),
        ::testing::Values(0, 1, 2, 3, 4),
        ::testing::Values(size_t{0}, size_t{1}, size_t{3}, size_t{4095},
                          size_t{4096}, size_t{4097}, size_t{100000})),
    [](const auto &info) {
        return algorithmName(std::get<0>(info.param)) + "_f" +
            std::to_string(std::get<1>(info.param)) + "_s" +
            std::to_string(std::get<2>(info.param));
    });

TEST(CompressorContrast, ZvcIsLayoutInsensitiveRleIsNot)
{
    // Construct "clustered" vs "interleaved" placements of the same zero
    // population, standing in for NCHW vs NHWC of a spatially clustered
    // activation map (the Figure 11 mechanism).
    constexpr size_t kWords = 1 << 16;
    std::vector<float> clustered(kWords, 0.0f);
    std::vector<float> interleaved(kWords, 0.0f);
    Rng rng(4242);
    for (size_t i = 0; i < kWords; ++i) {
        // Cluster: zeros fill contiguous blocks of 256 words.
        const bool block_dense = (i / 256) % 2 == 0;
        clustered[i] = block_dense
            ? 1.0f + static_cast<float>(rng.uniform()) : 0.0f;
        // Interleave: same 50% population but alternating.
        interleaved[i] = (i % 2 == 0)
            ? 1.0f + static_cast<float>(rng.uniform()) : 0.0f;
    }
    auto bytes = [](const std::vector<float> &words) {
        std::vector<uint8_t> out(words.size() * 4);
        std::memcpy(out.data(), words.data(), out.size());
        return out;
    };

    const auto zvc = makeCompressor(Algorithm::Zvc);
    const auto rle = makeCompressor(Algorithm::Rle);

    const double zvc_gap =
        zvc->measureRatio(bytes(clustered)) /
        zvc->measureRatio(bytes(interleaved));
    const double rle_gap =
        rle->measureRatio(bytes(clustered)) /
        rle->measureRatio(bytes(interleaved));

    EXPECT_NEAR(zvc_gap, 1.0, 0.02); // ZVC: placement-invariant
    EXPECT_GT(rle_gap, 1.3);         // RLE: collapses when interleaved
}

TEST(CompressorRegistry, NamesMatchPaperLabels)
{
    EXPECT_EQ(makeCompressor(Algorithm::Rle)->name(), "RL");
    EXPECT_EQ(makeCompressor(Algorithm::Zvc)->name(), "ZV");
    EXPECT_EQ(makeCompressor(Algorithm::Zlib)->name(), "ZL");
    EXPECT_EQ(algorithmName(Algorithm::Rle), "RL");
    EXPECT_EQ(algorithmName(Algorithm::Zvc), "ZV");
    EXPECT_EQ(algorithmName(Algorithm::Zlib), "ZL");
}

TEST(CompressorRegistry, WindowSizePropagates)
{
    const auto c = makeCompressor(Algorithm::Zvc, 64 * 1024);
    EXPECT_EQ(c->windowBytes(), 64u * 1024u);
}

} // namespace
} // namespace cdma
