/**
 * @file
 * Section V-C ablation: staging-shard size and staging-buffer depth
 * sensitivity of the double-buffered pipelines, in both directions.
 * The fig12 footer shows the overlapped offload pipeline costs only one
 * staging-shard compression fill per transfer at ZV ratios — but that
 * hinges on the bandwidth-delay shard sizing: tiny shards pay the fill
 * more often relative to nothing (more shards, same single fill) yet
 * add per-shard quantization, while giant shards leave little to
 * overlap at all. This harness sweeps CdmaConfig::shard_bytes and
 * CdmaConfig::staging_buffers over a representative transfer at a
 * ZV-class ratio and at a fetch-capped ratio, reporting the offload
 * (compress under wire-out) and prefetch (wire-in under decompress)
 * overlap side by side — all through the allocation-free closed-form
 * models, which the tests pin to the DES references.
 */

#include <cstdio>
#include <vector>

#include "cdma/transfer_engine.hh"
#include "common/harness.hh"

using namespace cdma;
using bench::Table;

namespace {

struct SweepPoint {
    uint64_t shard_bytes; // 0 = bandwidth-delay default (70 KB)
    unsigned staging_buffers;
};

std::string
shardLabel(uint64_t shard_bytes, const CdmaEngine &engine)
{
    const OffloadScheduler scheduler(engine);
    const uint64_t actual =
        scheduler.shardWindows() * engine.config().compression.window_bytes;
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%llu KB%s",
                  static_cast<unsigned long long>(actual / 1024),
                  shard_bytes == 0 ? " (BDP)" : "");
    return buffer;
}

} // namespace

int
main()
{
    // 64 MiB: a large mid-network VGG-class activation map at batch
    // size; big enough that every shard size below yields a multi-shard
    // train.
    const uint64_t raw_bytes = 64ull << 20;
    const std::vector<uint64_t> shard_sizes = {
        4096, 16384, 0 /* BDP: 70 KB */, 262144, 1u << 20};
    const std::vector<unsigned> buffer_depths = {1, 2, 3, 4};

    for (const double ratio : {2.5, 40.0}) {
        std::printf("== Ablation: pipeline overlap vs shard size / "
                    "staging depth (64 MiB transfer, ratio %.1fx%s) "
                    "==\n",
                    ratio, ratio > 12.5 ? ", past the fetch cap" : "");
        Table table({"shard", "buffers", "off ms", "off-ovl", "pre ms",
                     "pre-ovl", "shards"});
        for (const uint64_t shard_bytes : shard_sizes) {
            for (const unsigned buffers : buffer_depths) {
                CdmaConfig config;
                config.transfer.timing_mode = TimingMode::Overlapped;
                config.transfer.shard_bytes = shard_bytes;
                config.transfer.staging_buffers = buffers;
                const CdmaEngine engine(config);
                const OffloadScheduler offload(engine);
                const PrefetchScheduler prefetch(engine);
                const OffloadTiming off =
                    offload.modelFromRatio(raw_bytes, ratio);
                const PrefetchTiming pre =
                    prefetch.modelFromRatio(raw_bytes, ratio);
                table.addRow({
                    shardLabel(shard_bytes, engine),
                    Table::num(buffers, 0),
                    Table::num(off.overlapped_seconds * 1e3, 3),
                    Table::num(100.0 * off.overlap_fraction, 1),
                    Table::num(pre.overlapped_seconds * 1e3, 3),
                    Table::num(100.0 * pre.overlap_fraction, 1),
                    Table::num(static_cast<double>(off.shard_count), 0),
                });
            }
        }
        table.print();
        std::printf("\n");
    }
    std::printf("one staging buffer fully serializes both legs; past "
                "two, extra buffers only help when stage times are "
                "uneven across shards (uniform shards saturate at "
                "double buffering). Tiny shards keep overlap high but "
                "model per-shard engine occupancy the hardware would "
                "pay in setup; giant shards approach the single-shard "
                "no-overlap limit.\n");
    return 0;
}
