#include "tensor/layout.hh"

#include <sstream>

#include "common/logging.hh"

namespace cdma {

std::string
layoutName(Layout layout)
{
    switch (layout) {
      case Layout::NCHW: return "NCHW";
      case Layout::NHWC: return "NHWC";
      case Layout::CHWN: return "CHWN";
    }
    panic("unreachable layout value %d", static_cast<int>(layout));
}

Layout
layoutFromName(const std::string &name)
{
    if (name == "NCHW")
        return Layout::NCHW;
    if (name == "NHWC")
        return Layout::NHWC;
    if (name == "CHWN")
        return Layout::CHWN;
    fatal("unknown tensor layout '%s' (expected NCHW, NHWC or CHWN)",
          name.c_str());
}

std::string
Shape4D::str() const
{
    std::ostringstream out;
    out << "(" << n << ", " << c << ", " << h << ", " << w << ")";
    return out.str();
}

int64_t
linearIndex(const Shape4D &shape, Layout layout,
            int64_t n, int64_t c, int64_t h, int64_t w)
{
    switch (layout) {
      case Layout::NCHW:
        return ((n * shape.c + c) * shape.h + h) * shape.w + w;
      case Layout::NHWC:
        return ((n * shape.h + h) * shape.w + w) * shape.c + c;
      case Layout::CHWN:
        return ((c * shape.h + h) * shape.w + w) * shape.n + n;
    }
    panic("unreachable layout value %d", static_cast<int>(layout));
}

} // namespace cdma
