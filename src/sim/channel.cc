#include "sim/channel.hh"

#include <algorithm>

#include "common/logging.hh"

namespace cdma {

Channel::Channel(EventQueue &queue, std::string name,
                 double bytes_per_second)
    : queue_(queue), name_(std::move(name)),
      bytes_per_second_(bytes_per_second)
{
    CDMA_ASSERT(bytes_per_second > 0.0, "channel %s has no bandwidth",
                name_.c_str());
}

void
Channel::submit(uint64_t bytes, Completion on_done, SimTime extra_latency)
{
    const SimTime start = std::max(queue_.now(), busy_until_);
    const SimTime service =
        static_cast<double>(bytes) / bytes_per_second_ + extra_latency;
    busy_until_ = start + service;
    busy_seconds_ += service;
    total_bytes_ += bytes;
    if (on_done) {
        queue_.scheduleAt(busy_until_,
                          [cb = std::move(on_done)]() { cb(); });
    }
}

double
Channel::utilization() const
{
    const SimTime horizon = std::max(queue_.now(), busy_until_);
    return horizon > 0.0 ? busy_seconds_ / horizon : 0.0;
}

const char *
duplexModeName(DuplexMode mode)
{
    switch (mode) {
      case DuplexMode::Full: return "full_duplex";
      case DuplexMode::Half: return "half_duplex";
    }
    panic("unreachable duplex mode %d", static_cast<int>(mode));
}

const char *
linkArbiterName(LinkArbiter arbiter)
{
    switch (arbiter) {
      case LinkArbiter::RoundRobin:    return "round_robin";
      case LinkArbiter::OffloadFirst:  return "offload_first";
      case LinkArbiter::PrefetchFirst: return "prefetch_first";
    }
    panic("unreachable arbiter %d", static_cast<int>(arbiter));
}

DuplexChannel::DuplexChannel(EventQueue &queue, std::string name,
                             double bytes_per_second, DuplexMode mode,
                             LinkArbiter arbiter)
    : queue_(queue), name_(std::move(name)),
      bytes_per_second_(bytes_per_second), mode_(mode), arbiter_(arbiter)
{
    CDMA_ASSERT(bytes_per_second > 0.0, "channel %s has no bandwidth",
                name_.c_str());
}

namespace {

/** Grow-on-demand accrual into a per-source-tag accumulator. */
void
accrueSource(std::vector<SimTime> &busy, unsigned source, SimTime amount)
{
    if (busy.size() <= source)
        busy.resize(source + 1, 0.0);
    busy[source] += amount;
}

/** Sum of every tag's accumulator except @p source. */
SimTime
foreignSum(const std::vector<SimTime> &busy, unsigned source)
{
    SimTime sum = 0.0;
    for (size_t tag = 0; tag < busy.size(); ++tag) {
        if (tag != source)
            sum += busy[tag];
    }
    return sum;
}

} // namespace

SimTime
DuplexChannel::sourceBusySeconds(Direction direction,
                                 unsigned source) const
{
    const Side &s = side(direction);
    SimTime busy =
        source < s.source_busy.size() ? s.source_busy[source] : 0.0;
    // Full duplex folds drained segments lazily (on later submits);
    // count the completed portion of anything still in the deque so the
    // accessor is exact at any sampling time.
    const SimTime now = queue_.now();
    for (const Segment &seg : s.segments) {
        if (seg.source == source) {
            busy += std::clamp(now - (seg.end - seg.service), 0.0,
                               seg.service);
        }
    }
    return busy;
}

SimTime
DuplexChannel::busyAccrued(Direction d, SimTime now) const
{
    SimTime accrued = side(d).busy_seconds;
    if (link_busy_ && serving_ == d)
        accrued += now - service_start_;
    return accrued;
}

void
DuplexChannel::noteServiceInterval(SimTime start, SimTime end)
{
    // Per side, intervals are FIFO and contiguous while backlogged; a
    // new interval can start below occupied_until_ (the other side is
    // backlogged into the future) only when its own side was idle, in
    // which case everything before occupied_until_ is already covered —
    // so clipping at the furthest end seen keeps the union exact.
    occupied_seconds_ += std::max(0.0, end - std::max(start,
                                                      occupied_until_));
    occupied_until_ = std::max(occupied_until_, end);
}

void
DuplexChannel::submit(Direction direction, uint64_t bytes,
                      Completion on_done, SimTime extra_latency,
                      unsigned source)
{
    Side &s = side(direction);
    s.total_bytes += bytes;

    if (mode_ == DuplexMode::Full) {
        // Independent directed sub-channels: each direction is the
        // plain FIFO Channel at the full link rate, no cross-direction
        // state at all.
        const SimTime start = std::max(queue_.now(), s.busy_until);
        const SimTime service =
            static_cast<double>(bytes) / bytes_per_second_ +
            extra_latency;
        Grant grant;
        grant.queued_at = queue_.now();
        grant.start = start;
        grant.end = start + service;
        // My wait [now, start) is filled exactly by the not-yet-drained
        // FIFO backlog ahead of me; attribute the foreign-tagged share
        // (the segment in service at `now` contributes only its
        // remaining portion).
        while (!s.segments.empty() &&
               s.segments.front().end <= grant.queued_at) {
            const Segment &done = s.segments.front();
            accrueSource(s.source_busy, done.source, done.service);
            s.segments.pop_front();
        }
        for (const Segment &seg : s.segments) {
            if (seg.source != source) {
                grant.cross_source_wait += std::min(
                    seg.end - grant.queued_at, seg.service);
            }
        }
        s.cross_source_seconds += grant.cross_source_wait;
        s.segments.push_back({grant.end, service, source});
        s.busy_until = grant.end;
        s.busy_seconds += service;
        last_drain_ = std::max(last_drain_, grant.end);
        noteServiceInterval(grant.start, grant.end);
        if (on_done) {
            queue_.scheduleAt(grant.end,
                              [cb = std::move(on_done), grant]() {
                                  cb(grant);
                              });
        }
        return;
    }

    // Half duplex: queue behind the arbiter.
    if (s.queue.empty())
        s.pending_since = queue_.now();
    Pending pending;
    pending.bytes = bytes;
    pending.extra_latency = extra_latency;
    pending.queued_at = queue_.now();
    pending.opposing_busy_at_queue =
        busyAccrued(opposite(direction), queue_.now());
    pending.foreign_busy_at_queue = foreignSum(s.source_busy, source);
    pending.source = source;
    pending.on_done = std::move(on_done);
    s.queue.push_back(std::move(pending));
    tryStartHalf();
}

void
DuplexChannel::tryStartHalf()
{
    if (link_busy_)
        return;
    const bool out_pending = !side(Direction::Out).queue.empty();
    const bool in_pending = !side(Direction::In).queue.empty();
    if (!out_pending && !in_pending)
        return;

    Direction next = Direction::Out;
    if (out_pending != in_pending) {
        next = out_pending ? Direction::Out : Direction::In;
    } else {
        switch (arbiter_) {
          case LinkArbiter::RoundRobin:
            next = opposite(last_served_);
            break;
          case LinkArbiter::OffloadFirst:
            next = Direction::Out;
            break;
          case LinkArbiter::PrefetchFirst:
            next = Direction::In;
            break;
        }
    }

    Side &s = side(next);
    const Pending &head = s.queue.front();
    link_busy_ = true;
    serving_ = next;
    service_start_ = queue_.now();
    const SimTime duration =
        static_cast<double>(head.bytes) / bytes_per_second_ +
        head.extra_latency;
    queue_.scheduleAfter(duration, [this, next, duration,
                                    start = service_start_] {
        finishHalf(next, start, duration);
    });
}

void
DuplexChannel::finishHalf(Direction direction, SimTime service_start,
                          SimTime duration)
{
    const SimTime now = queue_.now();
    Side &s = side(direction);
    s.busy_seconds += duration;
    noteServiceInterval(service_start, now);

    Pending done = std::move(s.queue.front());
    s.queue.pop_front();
    // Same-direction foreign service completed between my submit and my
    // service start is exactly the multi-tenant queueing stall I paid
    // (the link is serial, so nothing of mine was in flight meanwhile;
    // my own service has not been folded into source_busy yet).
    const SimTime cross_source_wait =
        foreignSum(s.source_busy, done.source) -
        done.foreign_busy_at_queue;
    s.cross_source_seconds += cross_source_wait;
    accrueSource(s.source_busy, done.source, duration);
    if (!s.queue.empty())
        s.pending_since = now; // successor becomes head-of-line now

    // Head-of-line blocking: the opposing direction waited while this
    // transfer held the shared link.
    Side &other = side(opposite(direction));
    if (!other.queue.empty()) {
        other.blocked_seconds +=
            now - std::max(service_start, other.pending_since);
    }

    Grant grant;
    grant.queued_at = done.queued_at;
    grant.start = service_start;
    grant.end = now;
    // The opposing direction's cumulative service between submit and
    // service start is exactly the contention this transfer paid (the
    // link is serial, so nothing else fills that gap but own-direction
    // predecessors).
    grant.opposing_wait =
        busyAccrued(opposite(direction), service_start) -
        done.opposing_busy_at_queue;
    grant.cross_source_wait = cross_source_wait;
    s.contention_seconds += grant.opposing_wait;

    link_busy_ = false;
    last_served_ = direction;
    last_drain_ = std::max(last_drain_, now);
    if (done.on_done)
        done.on_done(grant);
    tryStartHalf();
}

} // namespace cdma
