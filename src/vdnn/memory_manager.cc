#include "vdnn/memory_manager.hh"

#include <algorithm>

#include "cdma/transfer_engine.hh"
#include "common/logging.hh"

namespace cdma {

std::string
offloadPolicyName(OffloadPolicy policy)
{
    switch (policy) {
      case OffloadPolicy::All:      return "offload-all";
      case OffloadPolicy::ConvOnly: return "offload-conv";
    }
    panic("unreachable policy %d", static_cast<int>(policy));
}

namespace {

bool
isConvLike(const LayerDesc &layer)
{
    return layer.kind == "conv" || layer.kind == "inception" ||
        layer.kind == "fire";
}

} // namespace

VdnnMemoryManager::VdnnMemoryManager(const NetworkDesc &network,
                                     int64_t batch, OffloadPolicy policy)
    : network_(network), batch_(batch), policy_(policy)
{
    CDMA_ASSERT(batch > 0, "batch must be positive");
    CDMA_ASSERT(!network_.layers.empty(), "network %s has no layers",
                network_.name.c_str());

    // Row i's input is row i-1's output; row 0's input is the image
    // batch itself.
    const uint64_t input_bytes = static_cast<uint64_t>(
        network_.input_channels * network_.input_height *
        network_.input_width * 4 * batch_);
    if (policy_ == OffloadPolicy::All || isConvLike(network_.layers[0]))
        offloads_.push_back({0, "input", input_bytes});
    for (size_t i = 1; i < network_.layers.size(); ++i) {
        if (policy_ == OffloadPolicy::ConvOnly &&
            !isConvLike(network_.layers[i])) {
            continue;
        }
        const LayerDesc &producer = network_.layers[i - 1];
        offloads_.push_back(
            {i, producer.name,
             static_cast<uint64_t>(producer.bytesPerImage()) *
                 static_cast<uint64_t>(batch_)});
    }
}

std::string
transferDirectionName(TransferDirection direction)
{
    switch (direction) {
      case TransferDirection::Offload:  return "offload";
      case TransferDirection::Prefetch: return "prefetch";
    }
    panic("unreachable direction %d", static_cast<int>(direction));
}

std::vector<TransferOp>
VdnnMemoryManager::prefetchSchedule() const
{
    std::vector<TransferOp> prefetches(offloads_.rbegin(),
                                       offloads_.rend());
    return prefetches;
}

std::vector<DirectedTransferOp>
VdnnMemoryManager::duplexSchedule() const
{
    std::vector<DirectedTransferOp> schedule;
    schedule.reserve(2 * offloads_.size());
    for (const TransferOp &op : offloads_)
        schedule.push_back({TransferDirection::Offload, op});
    for (const TransferOp &op : prefetchSchedule())
        schedule.push_back({TransferDirection::Prefetch, op});
    return schedule;
}

uint64_t
VdnnMemoryManager::totalOffloadBytes() const
{
    uint64_t total = 0;
    for (const auto &op : offloads_)
        total += op.bytes;
    return total;
}

std::vector<TransferPlan>
VdnnMemoryManager::plannedOffloads(const CdmaEngine &engine,
                                   const std::vector<double> &output_ratios,
                                   bool raw_dma) const
{
    CDMA_ASSERT(output_ratios.empty() ||
                    output_ratios.size() == network_.layers.size(),
                "need one output ratio per layer (%zu given, %zu layers)",
                output_ratios.size(), network_.layers.size());
    std::vector<TransferPlan> plans;
    plans.reserve(offloads_.size());
    for (const auto &op : offloads_) {
        if (raw_dma) {
            // The vDNN baseline's DMA copies raw bytes with no cDMA
            // engine in the path: plain PCIe occupancy, no compression
            // pipeline even when the engine models one.
            TransferPlan plan;
            plan.label = op.label;
            plan.raw_bytes = op.bytes;
            plan.wire_bytes = op.bytes;
            plan.ratio = 1.0;
            plan.required_fetch_bandwidth = engine.config().gpu.pcie_bandwidth;
            plan.seconds = engine.transferSeconds(op.bytes, 1.0);
            plans.push_back(std::move(plan));
            continue;
        }
        // The transfer paired with row i carries row i-1's output (= row
        // i's input); the raw input image batch (row 0) never compresses.
        double ratio = 1.0;
        if (!output_ratios.empty() && op.layer_index > 0)
            ratio = std::max(1.0, output_ratios[op.layer_index - 1]);
        plans.push_back(engine.planFromRatio(op.label, op.bytes, ratio));
    }
    return plans;
}

std::vector<TransferPlan>
VdnnMemoryManager::plannedAdaptiveOffloads(
    const CdmaEngine &engine,
    const std::vector<double> &output_densities) const
{
    CDMA_ASSERT(output_densities.size() == network_.layers.size(),
                "need one output density per layer (%zu given, %zu "
                "layers)",
                output_densities.size(), network_.layers.size());
    std::vector<TransferPlan> plans;
    plans.reserve(offloads_.size());
    for (const auto &op : offloads_) {
        // Same alignment as plannedOffloads: the transfer paired with
        // row i carries row i-1's output, and the raw input image batch
        // (row 0) never compresses, so the policy never sees it.
        if (op.layer_index == 0) {
            plans.push_back(engine.planFromRatio(op.label, op.bytes, 1.0));
            continue;
        }
        plans.push_back(engine.planFromDensity(
            op.label, op.bytes, output_densities[op.layer_index - 1]));
    }
    return plans;
}

std::vector<TransferPlan>
VdnnMemoryManager::plannedPrefetches(const CdmaEngine &engine,
                                     const std::vector<double> &output_ratios,
                                     bool raw_dma) const
{
    auto plans = plannedOffloads(engine, output_ratios, raw_dma);
    std::reverse(plans.begin(), plans.end());
    // The backward direction runs the mirrored pipeline (wire in, then
    // decompress); when the engine modeled it, the prefetch makespan —
    // not the offload one — is what the backward pass waits on.
    for (TransferPlan &plan : plans) {
        if (plan.prefetch.shard_count > 0)
            plan.seconds = plan.prefetch.overlapped_seconds;
    }
    return plans;
}

uint64_t
VdnnMemoryManager::weightBytes(const LayerDesc &layer)
{
    if (layer.kind == "pool")
        return 0;
    // For conv-like layers macs = spatial x weight_count, so the weight
    // count is macs / spatial; for fc, spatial is 1 and macs equals the
    // weight count directly.
    const auto spatial =
        static_cast<uint64_t>(layer.height * layer.width);
    return spatial > 0 ? layer.macs_per_image / spatial * 4 : 0;
}

MemoryFootprint
VdnnMemoryManager::footprint() const
{
    MemoryFootprint fp;
    for (const auto &layer : network_.layers) {
        // weights + an equal-size weight-gradient buffer
        fp.weights_bytes += 2 * weightBytes(layer);
        fp.activations_bytes +=
            static_cast<uint64_t>(layer.bytesPerImage()) *
            static_cast<uint64_t>(batch_);
    }
    // Backpropagation also materializes a gradient map per activation
    // map (dX/dY in Figure 1); together they are the >90% of training
    // memory the paper cites in Section III.
    fp.gradients_bytes = fp.activations_bytes;
    fp.baseline_total =
        fp.weights_bytes + fp.activations_bytes + fp.gradients_bytes;

    // vDNN working set: weights stay resident; per offloaded layer only
    // its input and output activation maps (and their gradients during
    // backward) are live at once. Activations whose maps are never
    // offloaded (ConvOnly policy) stay resident for the whole iteration.
    uint64_t peak_pair = 0;
    std::vector<bool> offloaded(network_.layers.size() + 1, false);
    for (const auto &op : offloads_) {
        offloaded[op.layer_index] = true; // row's input map is offloaded
        const uint64_t in_bytes = op.bytes;
        const uint64_t out_bytes = static_cast<uint64_t>(
            network_.layers[op.layer_index].bytesPerImage()) *
            static_cast<uint64_t>(batch_);
        peak_pair = std::max(peak_pair, in_bytes + out_bytes);
    }
    uint64_t resident = 0;
    for (size_t r = 0; r + 1 < network_.layers.size(); ++r) {
        // Row r's output is offloaded iff row r+1's input is scheduled.
        if (!offloaded[r + 1]) {
            resident += static_cast<uint64_t>(
                network_.layers[r].bytesPerImage()) *
                static_cast<uint64_t>(batch_);
        }
    }
    fp.vdnn_peak = fp.weights_bytes + 2 * peak_pair + resident;
    return fp;
}

MemoryFootprint
VdnnMemoryManager::footprint(const CdmaEngine &engine) const
{
    MemoryFootprint fp = footprint();
    // A disabled-compression engine is the plain vDNN baseline: no cDMA
    // hardware, no staging buffers to account for.
    if (!engine.config().compression.enabled)
        return fp;
    // The offload pipeline's staging shards live in GPU DRAM next to the
    // DMA unit (Section V-C); they are part of the virtualized working
    // set whenever a cDMA engine is attached.
    const OffloadScheduler scheduler(engine);
    fp.staging_bytes = static_cast<uint64_t>(engine.config().transfer.staging_buffers) *
        scheduler.shardWindows() * engine.config().compression.window_bytes;
    fp.vdnn_peak += fp.staging_bytes;
    return fp;
}

} // namespace cdma
