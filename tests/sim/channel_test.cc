/** @file Unit tests for the bandwidth-limited FIFO channel. */

#include <gtest/gtest.h>

#include "sim/channel.hh"

namespace cdma {
namespace {

TEST(Channel, SingleTransferTakesBytesOverBandwidth)
{
    EventQueue queue;
    Channel link(queue, "pcie", 16e9);
    double done_at = -1.0;
    link.submit(16'000'000'000ull, [&] { done_at = queue.now(); });
    queue.run();
    EXPECT_NEAR(done_at, 1.0, 1e-9);
}

TEST(Channel, TransfersServiceFifo)
{
    EventQueue queue;
    Channel link(queue, "link", 100.0); // 100 B/s
    std::vector<int> order;
    double second_done = -1.0;
    link.submit(100, [&] { order.push_back(1); });
    link.submit(50, [&] {
        order.push_back(2);
        second_done = queue.now();
    });
    queue.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_NEAR(second_done, 1.5, 1e-12);
}

TEST(Channel, ExtraLatencyAddsToService)
{
    EventQueue queue;
    Channel link(queue, "link", 100.0);
    double done_at = -1.0;
    link.submit(100, [&] { done_at = queue.now(); }, 0.25);
    queue.run();
    EXPECT_NEAR(done_at, 1.25, 1e-12);
}

TEST(Channel, TracksTotals)
{
    EventQueue queue;
    Channel link(queue, "link", 1000.0);
    link.submit(500, nullptr);
    link.submit(250, nullptr);
    queue.run();
    EXPECT_EQ(link.totalBytes(), 750u);
    EXPECT_NEAR(link.busySeconds(), 0.75, 1e-12);
}

TEST(Channel, UtilizationReflectsIdleTime)
{
    EventQueue queue;
    Channel link(queue, "link", 100.0);
    link.submit(100, nullptr); // busy [0, 1]
    queue.run();
    // Idle until t=3, then busy one more second.
    queue.scheduleAt(3.0, [&] { link.submit(100, nullptr); });
    queue.run();
    EXPECT_NEAR(link.utilization(), 2.0 / 4.0, 1e-12);
}

TEST(Channel, SubmitAfterIdleStartsImmediately)
{
    EventQueue queue;
    Channel link(queue, "link", 100.0);
    double done_at = -1.0;
    queue.scheduleAt(5.0, [&] {
        link.submit(100, [&] { done_at = queue.now(); });
    });
    queue.run();
    EXPECT_NEAR(done_at, 6.0, 1e-12);
}

} // namespace
} // namespace cdma
