/**
 * @file
 * Discrete-event simulation of one training iteration under virtualized
 * memory, reproducing the overlap semantics of Figure 2(b): during
 * forward propagation, layer n's input activation map is offloaded over
 * PCIe concurrently with layer n's computation, and layer n+1 may not
 * start until both finish; during backward propagation, the prefetch of
 * layer n's input overlaps layer n+1's backward computation, and layer
 * n's backward waits for its prefetch. PCIe transfers are serviced FIFO
 * by a bandwidth-limited channel. The same simulator runs the vDNN
 * baseline (raw transfers), cDMA (compressed transfers with the COMP_BW
 * inflation), and the oracle (transfers always hidden), producing
 * Figures 3(b) and 13.
 */

#ifndef CDMA_PERF_STEP_SIM_HH
#define CDMA_PERF_STEP_SIM_HH

#include <string>
#include <vector>

#include "cdma/engine.hh"
#include "perf/timing.hh"
#include "vdnn/memory_manager.hh"

namespace cdma {

/** Virtualization mode of a simulated step. */
enum class StepMode {
    Baseline, ///< no offloading at all (not memory-scalable)
    Vdnn,     ///< offload-all with raw transfers
    Cdma,     ///< offload-all with compressed transfers
    Oracle,   ///< offload-all, transfers always hidden
};

/** Display name of a step mode. */
std::string stepModeName(StepMode mode);

/** Per-layer outcome of a simulated step. */
struct LayerStepStats {
    std::string label;
    double forward_seconds = 0.0;
    double backward_seconds = 0.0;
    double offload_seconds = 0.0;  ///< modeled latency of this layer's input
    /** Modeled latency of restoring this layer's input (equals
     *  offload_seconds except under TimingMode::Overlapped, where the
     *  prefetch pipeline is priced separately). */
    double prefetch_seconds = 0.0;
    double forward_stall = 0.0;    ///< forward wait on the offload
    double backward_stall = 0.0;   ///< backward wait on the prefetch
    /** Compress/wire pipeline breakdown of the input's offload (all
     *  zeros unless the engine runs TimingMode::Overlapped). */
    OffloadTiming offload;
    /** Wire/decompress pipeline breakdown of the input's prefetch (all
     *  zeros unless the engine runs TimingMode::Overlapped). */
    PrefetchTiming prefetch;
};

/** Result of one simulated training iteration. */
struct StepResult {
    double total_seconds = 0.0;
    double forward_seconds = 0.0;
    double backward_seconds = 0.0;
    double compute_seconds = 0.0; ///< oracle lower bound (sum of compute)
    double stall_seconds = 0.0;   ///< total - compute
    uint64_t raw_transfer_bytes = 0;  ///< per direction
    uint64_t wire_transfer_bytes = 0; ///< after compression
    double pcie_utilization = 0.0;
    std::vector<LayerStepStats> layers;

    /** Throughput relative to another result (other/self). */
    double speedupOver(const StepResult &other) const
    {
        return other.total_seconds / total_seconds;
    }
};

/** DES driver for one training iteration. */
class StepSimulator
{
  public:
    /**
     * @param manager vDNN transfer schedule + memory accounting.
     * @param engine cDMA engine (supplies transfer times; for Vdnn mode
     *        its compression is bypassed).
     * @param perf Layer timing model.
     * @param version cuDNN version for compute times.
     */
    StepSimulator(const VdnnMemoryManager &manager, const CdmaEngine &engine,
                  const PerfModel &perf, CudnnVersion version);

    /**
     * Simulate one iteration.
     *
     * @param mode Virtualization mode.
     * @param output_ratios Compression ratio of each descriptor row's
     *        *output* activation map. The simulator aligns them with the
     *        offload schedule itself: the transfer paired with row i
     *        carries row i-1's output (row 0's input is the raw image
     *        batch, which never compresses). Required for Cdma mode;
     *        ignored otherwise.
     */
    StepResult run(StepMode mode,
                   const std::vector<double> &output_ratios = {}) const;

  private:
    const VdnnMemoryManager &manager_;
    const CdmaEngine &engine_;
    const PerfModel &perf_;
    CudnnVersion version_;
};

} // namespace cdma

#endif // CDMA_PERF_STEP_SIM_HH
