#include "dnn/trainer.hh"

#include "common/logging.hh"

namespace cdma {

Trainer::Trainer(Network &network, SyntheticDataset &dataset,
                 const TrainConfig &config)
    : network_(network), dataset_(dataset), config_(config)
{
    CDMA_ASSERT(config.iterations > 0, "iteration count must be positive");
    CDMA_ASSERT(config.batch_size > 0, "batch size must be positive");
}

float
Trainer::learningRate(double progress) const
{
    float lr = config_.sgd.learning_rate;
    for (double drop : config_.lr_drop_points) {
        if (progress >= drop)
            lr *= config_.lr_decay;
    }
    return lr;
}

std::vector<TrainSnapshot>
Trainer::run(const SnapshotHook &hook)
{
    std::vector<TrainSnapshot> snapshots;
    network_.setTraining(true);

    for (int iter = 0; iter < config_.iterations; ++iter) {
        const double progress = static_cast<double>(iter) /
            static_cast<double>(config_.iterations);

        Minibatch batch = dataset_.nextTrainBatch(config_.batch_size);
        const Tensor4D &logits = network_.forward(batch.images);
        const double loss_value = loss_.forward(logits, batch.labels);
        network_.backward(loss_.backward());

        SgdConfig sgd = config_.sgd;
        sgd.learning_rate = learningRate(progress);
        network_.step(sgd);

        const bool last = iter + 1 == config_.iterations;
        if (iter % config_.snapshot_every == 0 || last) {
            TrainSnapshot snap;
            snap.iteration = iter;
            snap.progress = last ? 1.0 : progress;
            snap.loss = loss_value;
            snap.train_accuracy = loss_.accuracy();
            snap.records = network_.activationRecords();
            if (hook)
                hook(snap);
            snapshots.push_back(std::move(snap));
        }
    }
    return snapshots;
}

double
Trainer::evaluate(int batches)
{
    network_.setTraining(false);
    double correct_weighted = 0.0;
    for (int b = 0; b < batches; ++b) {
        Minibatch batch = dataset_.nextValBatch(config_.batch_size);
        const Tensor4D &logits = network_.forward(batch.images);
        loss_.forward(logits, batch.labels);
        correct_weighted += loss_.accuracy();
    }
    network_.setTraining(true);
    return correct_weighted / static_cast<double>(batches);
}

} // namespace cdma
