#include "compress/analysis.hh"

#include <algorithm>
#include <cstring>

#include "common/logging.hh"

namespace cdma {

double
RunStats::clusteringIndex() const
{
    const double p = zeroFraction();
    if (p <= 0.0 || p >= 1.0 || zero_runs == 0)
        return 1.0;
    const double iid_run = 1.0 / (1.0 - p);
    return mean_zero_run / iid_run;
}

RunStats
analyzeRuns(std::span<const uint8_t> bytes)
{
    RunStats stats;
    stats.total_words = bytes.size() / 4;

    uint64_t current_run = 0;
    for (uint64_t w = 0; w < stats.total_words; ++w) {
        uint32_t value;
        std::memcpy(&value, bytes.data() + w * 4, 4);
        if (value == 0) {
            ++stats.zero_words;
            ++current_run;
        } else if (current_run > 0) {
            ++stats.zero_runs;
            stats.longest_zero_run =
                std::max(stats.longest_zero_run, current_run);
            current_run = 0;
        }
    }
    if (current_run > 0) {
        ++stats.zero_runs;
        stats.longest_zero_run =
            std::max(stats.longest_zero_run, current_run);
    }
    stats.mean_zero_run = stats.zero_runs
        ? static_cast<double>(stats.zero_words) /
            static_cast<double>(stats.zero_runs)
        : 0.0;
    return stats;
}

WindowProfile
profileWindows(Algorithm algorithm, std::span<const uint8_t> bytes,
               uint64_t window_bytes)
{
    const auto compressor = makeCompressor(algorithm, window_bytes);
    const CompressedBuffer compressed = compressor->compress(bytes);

    WindowProfile profile;
    profile.raw_window_bytes = window_bytes;
    profile.window_bytes = compressed.window_sizes;

    if (compressed.window_sizes.empty())
        return profile;

    double sum = 0.0;
    profile.min_ratio = 1e300;
    profile.max_ratio = 0.0;
    uint64_t remaining = bytes.size();
    for (uint32_t size : compressed.window_sizes) {
        const uint64_t raw = std::min<uint64_t>(remaining, window_bytes);
        const uint64_t effective =
            std::min<uint64_t>(size, raw); // store-raw fallback
        const double ratio = effective
            ? static_cast<double>(raw) / static_cast<double>(effective)
            : 1.0;
        sum += ratio;
        profile.min_ratio = std::min(profile.min_ratio, ratio);
        profile.max_ratio = std::max(profile.max_ratio, ratio);
        remaining -= raw;
    }
    profile.mean_ratio =
        sum / static_cast<double>(compressed.window_sizes.size());
    return profile;
}

} // namespace cdma
