#include "models/desc.hh"

#include "common/logging.hh"

namespace cdma {

uint64_t
NetworkDesc::totalMacsPerImage() const
{
    uint64_t total = 0;
    for (const auto &layer : layers)
        total += layer.macs_per_image;
    return total;
}

uint64_t
NetworkDesc::totalActivationBytesPerImage() const
{
    uint64_t total = 0;
    for (const auto &layer : layers)
        total += static_cast<uint64_t>(layer.bytesPerImage());
    return total;
}

DescBuilder::DescBuilder(std::string name, int64_t batch, int64_t c,
                         int64_t h, int64_t w)
    : c_(c), h_(h), w_(w)
{
    desc_.name = std::move(name);
    desc_.default_batch = batch;
    desc_.input_channels = c;
    desc_.input_height = h;
    desc_.input_width = w;
}

void
DescBuilder::push(LayerDesc desc)
{
    desc_.layers.push_back(std::move(desc));
}

DescBuilder &
DescBuilder::conv(const std::string &name, int64_t out_c, int64_t k,
                  int64_t stride, int64_t pad, int64_t group, bool relu)
{
    const int64_t out_h = (h_ + 2 * pad - k) / stride + 1;
    const int64_t out_w = (w_ + 2 * pad - k) / stride + 1;
    CDMA_ASSERT(out_h > 0 && out_w > 0, "conv %s collapses", name.c_str());
    LayerDesc desc;
    desc.name = name;
    desc.kind = "conv";
    desc.channels = out_c;
    desc.height = out_h;
    desc.width = out_w;
    desc.macs_per_image = static_cast<uint64_t>(out_c * out_h * out_w) *
        static_cast<uint64_t>(c_ * k * k) / static_cast<uint64_t>(group);
    desc.relu_follows = relu;
    push(desc);
    c_ = out_c;
    h_ = out_h;
    w_ = out_w;
    return *this;
}

DescBuilder &
DescBuilder::pool(const std::string &name, int64_t k, int64_t stride)
{
    // Ceiling mode, as Caffe computes pool shapes.
    const int64_t out_h = (h_ - k + stride - 1) / stride + 1;
    const int64_t out_w = (w_ - k + stride - 1) / stride + 1;
    LayerDesc desc;
    desc.name = name;
    desc.kind = "pool";
    desc.channels = c_;
    desc.height = out_h;
    desc.width = out_w;
    // Comparisons/adds, negligible next to conv GEMMs; charge one MAC per
    // window element.
    desc.macs_per_image =
        static_cast<uint64_t>(c_ * out_h * out_w) *
        static_cast<uint64_t>(k * k);
    // Pool outputs inherit sparsity (diluted) from their ReLU-ed inputs.
    desc.relu_follows = true;
    push(desc);
    h_ = out_h;
    w_ = out_w;
    return *this;
}

DescBuilder &
DescBuilder::globalPool(const std::string &name)
{
    LayerDesc desc;
    desc.name = name;
    desc.kind = "pool";
    desc.channels = c_;
    desc.height = 1;
    desc.width = 1;
    desc.macs_per_image = static_cast<uint64_t>(c_ * h_ * w_);
    desc.relu_follows = true;
    push(desc);
    h_ = 1;
    w_ = 1;
    return *this;
}

DescBuilder &
DescBuilder::fc(const std::string &name, int64_t out, bool relu)
{
    LayerDesc desc;
    desc.name = name;
    desc.kind = "fc";
    desc.channels = out;
    desc.height = 1;
    desc.width = 1;
    desc.macs_per_image = static_cast<uint64_t>(c_ * h_ * w_) *
        static_cast<uint64_t>(out);
    desc.relu_follows = relu;
    push(desc);
    c_ = out;
    h_ = 1;
    w_ = 1;
    return *this;
}

DescBuilder &
DescBuilder::inception(const std::string &name, int64_t n1x1, int64_t r3x3,
                       int64_t n3x3, int64_t r5x5, int64_t n5x5,
                       int64_t pool_proj)
{
    const int64_t in_c = c_;
    const uint64_t spatial = static_cast<uint64_t>(h_ * w_);

    // Internal row: the reduce (1x1 bottleneck) activations that live
    // between the module's convolutions and are offloaded like any other
    // ReLU output.
    LayerDesc internal;
    internal.name = name + "/reduce";
    internal.kind = "inception";
    internal.channels = r3x3 + r5x5;
    internal.height = h_;
    internal.width = w_;
    internal.macs_per_image =
        spatial * static_cast<uint64_t>(in_c * (r3x3 + r5x5));
    internal.relu_follows = true;
    push(internal);

    // Output row: the concatenated module output.
    LayerDesc output;
    output.name = name;
    output.kind = "inception";
    output.channels = n1x1 + n3x3 + n5x5 + pool_proj;
    output.height = h_;
    output.width = w_;
    output.macs_per_image = spatial *
        (static_cast<uint64_t>(in_c * n1x1) +
         static_cast<uint64_t>(r3x3 * 9 * n3x3) +
         static_cast<uint64_t>(r5x5 * 25 * n5x5) +
         static_cast<uint64_t>(in_c * pool_proj) +
         static_cast<uint64_t>(c_ * 9) /* 3x3 pool branch */);
    output.relu_follows = true;
    push(output);

    c_ = output.channels;
    return *this;
}

DescBuilder &
DescBuilder::fire(const std::string &name, int64_t squeeze, int64_t expand1,
                  int64_t expand3)
{
    const int64_t in_c = c_;
    const uint64_t spatial = static_cast<uint64_t>(h_ * w_);

    LayerDesc sq;
    sq.name = name + "/squeeze";
    sq.kind = "fire";
    sq.channels = squeeze;
    sq.height = h_;
    sq.width = w_;
    sq.macs_per_image = spatial * static_cast<uint64_t>(in_c * squeeze);
    sq.relu_follows = true;
    push(sq);

    LayerDesc ex;
    ex.name = name;
    ex.kind = "fire";
    ex.channels = expand1 + expand3;
    ex.height = h_;
    ex.width = w_;
    ex.macs_per_image = spatial *
        (static_cast<uint64_t>(squeeze * expand1) +
         static_cast<uint64_t>(squeeze * 9 * expand3));
    ex.relu_follows = true;
    push(ex);

    c_ = expand1 + expand3;
    return *this;
}

NetworkDesc
DescBuilder::build()
{
    const size_t n = desc_.layers.size();
    for (size_t i = 0; i < n; ++i) {
        desc_.layers[i].depth_fraction =
            n > 1 ? static_cast<double>(i) / static_cast<double>(n - 1)
                  : 0.0;
    }
    return desc_;
}

NetworkDesc
alexNetDesc()
{
    DescBuilder b("AlexNet", 256, 3, 227, 227);
    b.conv("conv0", 96, 11, 4, 0)
     .pool("pool0", 3, 2)
     .conv("conv1", 256, 5, 1, 2, /*group=*/2)
     .pool("pool1", 3, 2)
     .conv("conv2", 384, 3, 1, 1)
     .conv("conv3", 384, 3, 1, 1, /*group=*/2)
     .conv("conv4", 256, 3, 1, 1, /*group=*/2)
     .pool("pool2", 3, 2)
     .fc("fc1", 4096)
     .fc("fc2", 4096)
     .fc("fc3", 1000, /*relu=*/false);
    return b.build();
}

NetworkDesc
overFeatDesc()
{
    DescBuilder b("OverFeat", 256, 3, 231, 231);
    b.conv("conv1", 96, 11, 4, 0)
     .pool("pool1", 2, 2)
     .conv("conv2", 256, 5, 1, 0)
     .pool("pool2", 2, 2)
     .conv("conv3", 512, 3, 1, 1)
     .conv("conv4", 1024, 3, 1, 1)
     .conv("conv5", 1024, 3, 1, 1)
     .pool("pool5", 2, 2)
     .fc("fc6", 3072)
     .fc("fc7", 4096)
     .fc("fc8", 1000, /*relu=*/false);
    return b.build();
}

NetworkDesc
ninDesc()
{
    DescBuilder b("NiN", 128, 3, 227, 227);
    b.conv("conv1", 96, 11, 4, 0)
     .conv("cccp1", 96, 1, 1, 0)
     .conv("cccp2", 96, 1, 1, 0)
     .pool("pool1", 3, 2)
     .conv("conv2", 256, 5, 1, 2)
     .conv("cccp3", 256, 1, 1, 0)
     .conv("cccp4", 256, 1, 1, 0)
     .pool("pool2", 3, 2)
     .conv("conv3", 384, 3, 1, 1)
     .conv("cccp5", 384, 1, 1, 0)
     .conv("cccp6", 384, 1, 1, 0)
     .pool("pool3", 3, 2)
     .conv("conv4", 1024, 3, 1, 1)
     .conv("cccp7", 1024, 1, 1, 0)
     .conv("cccp8", 1000, 1, 1, 0)
     .globalPool("gap");
    return b.build();
}

NetworkDesc
vggDesc()
{
    DescBuilder b("VGG", 128, 3, 224, 224);
    b.conv("conv1_1", 64, 3, 1, 1)
     .conv("conv1_2", 64, 3, 1, 1)
     .pool("pool1", 2, 2)
     .conv("conv2_1", 128, 3, 1, 1)
     .conv("conv2_2", 128, 3, 1, 1)
     .pool("pool2", 2, 2)
     .conv("conv3_1", 256, 3, 1, 1)
     .conv("conv3_2", 256, 3, 1, 1)
     .conv("conv3_3", 256, 3, 1, 1)
     .pool("pool3", 2, 2)
     .conv("conv4_1", 512, 3, 1, 1)
     .conv("conv4_2", 512, 3, 1, 1)
     .conv("conv4_3", 512, 3, 1, 1)
     .pool("pool4", 2, 2)
     .conv("conv5_1", 512, 3, 1, 1)
     .conv("conv5_2", 512, 3, 1, 1)
     .conv("conv5_3", 512, 3, 1, 1)
     .pool("pool5", 2, 2)
     .fc("fc6", 4096)
     .fc("fc7", 4096)
     .fc("fc8", 1000, /*relu=*/false);
    return b.build();
}

NetworkDesc
squeezeNetDesc()
{
    DescBuilder b("SqueezeNet", 512, 3, 227, 227);
    b.conv("conv1", 96, 7, 2, 0)
     .pool("pool1", 3, 2)
     .fire("fire2", 16, 64, 64)
     .fire("fire3", 16, 64, 64)
     .fire("fire4", 32, 128, 128)
     .pool("pool4", 3, 2)
     .fire("fire5", 32, 128, 128)
     .fire("fire6", 48, 192, 192)
     .fire("fire7", 48, 192, 192)
     .fire("fire8", 64, 256, 256)
     .pool("pool8", 3, 2)
     .fire("fire9", 64, 256, 256)
     .conv("conv10", 1000, 1, 1, 0)
     .globalPool("gap");
    return b.build();
}

NetworkDesc
googLeNetDesc()
{
    DescBuilder b("GoogLeNet", 256, 3, 224, 224);
    b.conv("conv1", 64, 7, 2, 3)
     .pool("pool1", 3, 2)
     .conv("conv2_reduce", 64, 1, 1, 0)
     .conv("conv2", 192, 3, 1, 1)
     .pool("pool2", 3, 2)
     .inception("3a", 64, 96, 128, 16, 32, 32)
     .inception("3b", 128, 128, 192, 32, 96, 64)
     .pool("pool3", 3, 2)
     .inception("4a", 192, 96, 208, 16, 48, 64)
     .inception("4b", 160, 112, 224, 24, 64, 64)
     .inception("4c", 128, 128, 256, 24, 64, 64)
     .inception("4d", 112, 144, 288, 32, 64, 64)
     .inception("4e", 256, 160, 320, 32, 128, 128)
     .pool("pool4", 3, 2)
     .inception("5a", 256, 160, 320, 32, 128, 128)
     .inception("5b", 384, 192, 384, 48, 128, 128)
     .globalPool("gap")
     .fc("fc", 1000, /*relu=*/false);
    return b.build();
}

std::vector<NetworkDesc>
allNetworkDescs()
{
    return {alexNetDesc(),    overFeatDesc(), ninDesc(),
            vggDesc(),        squeezeNetDesc(), googLeNetDesc()};
}

} // namespace cdma
