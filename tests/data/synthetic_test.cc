/** @file Unit tests for the synthetic dataset generator. */

#include <cmath>

#include <gtest/gtest.h>

#include "data/synthetic.hh"

namespace cdma {
namespace {

TEST(SyntheticData, BatchShapeAndLabels)
{
    SyntheticDataset dataset;
    const Minibatch batch = dataset.nextTrainBatch(8);
    EXPECT_EQ(batch.images.shape(), (Shape4D{8, 3, 32, 32}));
    ASSERT_EQ(batch.labels.size(), 8u);
    for (int label : batch.labels) {
        EXPECT_GE(label, 0);
        EXPECT_LT(label, 10);
    }
}

TEST(SyntheticData, DeterministicAcrossInstances)
{
    SyntheticDataset a, b;
    const Minibatch ba = a.nextTrainBatch(4);
    const Minibatch bb = b.nextTrainBatch(4);
    EXPECT_EQ(ba.labels, bb.labels);
    for (size_t i = 0; i < ba.images.data().size(); ++i)
        EXPECT_EQ(ba.images.data()[i], bb.images.data()[i]);
}

TEST(SyntheticData, TrainAndValStreamsDiffer)
{
    SyntheticDataset dataset;
    const Minibatch train = dataset.nextTrainBatch(4);
    const Minibatch val = dataset.nextValBatch(4);
    int differing = 0;
    for (size_t i = 0; i < train.images.data().size(); ++i) {
        if (train.images.data()[i] != val.images.data()[i])
            ++differing;
    }
    EXPECT_GT(differing, 1000);
}

TEST(SyntheticData, SuccessiveBatchesDiffer)
{
    SyntheticDataset dataset;
    const Minibatch first = dataset.nextTrainBatch(4);
    const Minibatch second = dataset.nextTrainBatch(4);
    int differing = 0;
    for (size_t i = 0; i < first.images.data().size(); ++i) {
        if (first.images.data()[i] != second.images.data()[i])
            ++differing;
    }
    EXPECT_GT(differing, 1000);
}

TEST(SyntheticData, SameClassMoreSimilarThanDifferentClass)
{
    // The task must be learnable: intra-class distance should be smaller
    // than inter-class distance on average.
    SyntheticDataset dataset;
    Rng rng(1);

    auto render = [&](int label) {
        Tensor4D image(Shape4D{1, 3, 32, 32});
        dataset.renderSample(image, 0, label, rng);
        return image;
    };
    auto distance = [](const Tensor4D &a, const Tensor4D &b) {
        double d = 0.0;
        for (size_t i = 0; i < a.data().size(); ++i) {
            const double diff = static_cast<double>(a.data()[i]) -
                static_cast<double>(b.data()[i]);
            d += diff * diff;
        }
        return d;
    };

    double intra = 0.0, inter = 0.0;
    constexpr int kPairs = 20;
    for (int p = 0; p < kPairs; ++p) {
        intra += distance(render(3), render(3));
        inter += distance(render(3), render(7));
    }
    EXPECT_LT(intra, inter);
}

TEST(SyntheticData, ConfigurableGeometry)
{
    SyntheticDataConfig config;
    config.channels = 1;
    config.height = 16;
    config.width = 24;
    config.classes = 4;
    SyntheticDataset dataset(config);
    const Minibatch batch = dataset.nextTrainBatch(2);
    EXPECT_EQ(batch.images.shape(), (Shape4D{2, 1, 16, 24}));
    for (int label : batch.labels)
        EXPECT_LT(label, 4);
}

TEST(SyntheticData, ValuesAreFiniteAndBounded)
{
    SyntheticDataset dataset;
    const Minibatch batch = dataset.nextTrainBatch(8);
    for (float v : batch.images.data()) {
        EXPECT_TRUE(std::isfinite(v));
        EXPECT_LT(std::abs(v), 10.0f);
    }
}

} // namespace
} // namespace cdma
