/**
 * @file
 * Abstract lossless compressor interface used by the cDMA engine. All three
 * algorithms the paper evaluates (run-length encoding, zero-value
 * compression, and a DEFLATE-style "zlib" upper bound) implement this
 * interface. Compression is windowed: the input is split into fixed-size
 * windows (4 KB by default, Section VII-A) and each window is compressed
 * independently, mirroring the hardware which operates on bounded buffers.
 */

#ifndef CDMA_COMPRESS_COMPRESSOR_HH
#define CDMA_COMPRESS_COMPRESSOR_HH

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace cdma {

/**
 * Result of compressing a buffer: the concatenated per-window payloads plus
 * the framing metadata a real DMA engine would track out-of-band (window
 * boundaries and the original size). The paper's compression ratios count
 * payload bytes only, which ratio() reproduces.
 */
struct CompressedBuffer {
    /** Concatenated compressed window payloads. */
    std::vector<uint8_t> payload;
    /** Compressed size of each window, in payload order. */
    std::vector<uint32_t> window_sizes;
    /** Uncompressed input size in bytes. */
    uint64_t original_bytes = 0;
    /** Window size used during compression. */
    uint64_t window_bytes = 0;

    /** Compressed payload size in bytes. */
    uint64_t compressedBytes() const { return payload.size(); }

    /**
     * Compression ratio (original / compressed). A ratio below 1.0 means
     * the algorithm expanded the data; the DMA engine would then fall back
     * to sending the raw window, so callers typically clamp at 1.0 via
     * effectiveRatio().
     */
    double ratio() const;

    /**
     * Ratio after the store-raw fallback: every window is transferred as
     * min(compressed, raw) bytes, as a real engine with a "stored" window
     * mode would do.
     */
    double effectiveRatio() const;

    /** Transferred bytes under the store-raw fallback. */
    uint64_t effectiveBytes() const;
};

/**
 * Interface for a windowed lossless compressor.
 *
 * Subclasses implement compressWindow()/decompressWindow() on a single
 * window; the base class handles splitting, concatenation and verification.
 */
class Compressor
{
  public:
    /** Default compression window (4 KB, the paper's configuration). */
    static constexpr uint64_t kDefaultWindowBytes = 4096;

    explicit Compressor(uint64_t window_bytes = kDefaultWindowBytes);
    virtual ~Compressor() = default;

    /** Short algorithm tag as used in the paper's figures (RL/ZV/ZL). */
    virtual std::string name() const = 0;

    /** Compression window in bytes. */
    uint64_t windowBytes() const { return window_bytes_; }

    /** Compress @p input window-by-window. */
    CompressedBuffer compress(std::span<const uint8_t> input) const;

    /** Invert compress(); returns exactly the original bytes. */
    std::vector<uint8_t> decompress(const CompressedBuffer &buffer) const;

    /**
     * Convenience: compression ratio of @p input with the store-raw
     * fallback applied (the number the paper reports).
     */
    double measureRatio(std::span<const uint8_t> input) const;

  protected:
    /** Compress one window (at most windowBytes() long). */
    virtual std::vector<uint8_t>
    compressWindow(std::span<const uint8_t> window) const = 0;

    /**
     * Decompress one window payload back into exactly @p original_bytes
     * bytes.
     */
    virtual std::vector<uint8_t>
    decompressWindow(std::span<const uint8_t> payload,
                     uint64_t original_bytes) const = 0;

  private:
    uint64_t window_bytes_;
};

/** Algorithm selector matching the paper's figure labels. */
enum class Algorithm {
    Rle,  ///< run-length encoding ("RL")
    Zvc,  ///< zero-value compression ("ZV")
    Zlib, ///< DEFLATE-style upper bound ("ZL")
};

/** All algorithms in the order the paper's figures list them. */
inline constexpr Algorithm kAllAlgorithms[] = {
    Algorithm::Rle, Algorithm::Zvc, Algorithm::Zlib};

/** Figure label for an algorithm ("RL", "ZV", "ZL"). */
std::string algorithmName(Algorithm algorithm);

/** Construct a compressor for @p algorithm with the given window. */
std::unique_ptr<Compressor>
makeCompressor(Algorithm algorithm,
               uint64_t window_bytes = Compressor::kDefaultWindowBytes);

} // namespace cdma

#endif // CDMA_COMPRESS_COMPRESSOR_HH
