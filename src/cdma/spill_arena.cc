#include "cdma/spill_arena.hh"

#include <algorithm>
#include <bit>
#include <cstring>

#include "common/bits.hh"
#include "common/logging.hh"
#include "compress/kernels/kernels.hh"
#include "obs/trace.hh"

namespace cdma {

namespace {

/** Target slab size: small classes share slabs, huge slots get their
 *  own (one mmap-class allocation amortizes many shard stores). */
constexpr uint64_t kTargetSlabBytes = 1ull << 20;

} // namespace

SpillArena::SpillArena(uint64_t min_slot_bytes)
    : min_slot_bytes_(std::max<uint64_t>(64, std::bit_ceil(min_slot_bytes)))
{
}

uint32_t
SpillArena::classFor(uint64_t bytes) const
{
    const uint64_t size = std::bit_ceil(std::max(bytes, min_slot_bytes_));
    return static_cast<uint32_t>(std::countr_zero(size) -
                                 std::countr_zero(min_slot_bytes_));
}

uint8_t *
SpillArena::slotData(const SlotRef &ref)
{
    return classes_[ref.size_class].slabs[ref.slab].data() + ref.offset;
}

const uint8_t *
SpillArena::slotData(const SlotRef &ref) const
{
    return classes_[ref.size_class].slabs[ref.slab].data() + ref.offset;
}

SpillArena::SlotRef
SpillArena::allocateSlot(uint64_t bytes)
{
    const uint32_t index = classFor(bytes);
    if (index >= classes_.size())
        classes_.resize(index + 1);
    SizeClass &cls = classes_[index];
    if (cls.slot_bytes == 0) {
        cls.slot_bytes = min_slot_bytes_ << index;
        cls.slots_per_slab =
            std::max<uint64_t>(1, kTargetSlabBytes / cls.slot_bytes);
    }

    if (!cls.free_list.empty()) {
        const SlotRef ref = cls.free_list.back();
        cls.free_list.pop_back();
        ++stats_.reused_slots;
        stats_.live_slot_bytes += cls.slot_bytes;
        stats_.high_water_slot_bytes = std::max(
            stats_.high_water_slot_bytes, stats_.live_slot_bytes);
        return ref;
    }

    if (cls.slabs.empty() || cls.bump == cls.slots_per_slab) {
        cls.slabs.emplace_back();
        cls.slabs.back().resize(cls.slot_bytes * cls.slots_per_slab);
        cls.bump = 0;
        ++stats_.slab_allocations;
        stats_.slab_bytes += cls.slot_bytes * cls.slots_per_slab;
    }
    SlotRef ref;
    ref.size_class = index;
    ref.slab = static_cast<uint32_t>(cls.slabs.size() - 1);
    ref.offset = cls.bump * cls.slot_bytes;
    ++cls.bump;
    stats_.live_slot_bytes += cls.slot_bytes;
    stats_.high_water_slot_bytes =
        std::max(stats_.high_water_slot_bytes, stats_.live_slot_bytes);
    return ref;
}

SpillTicket
SpillArena::beginSpill(uint64_t original_bytes, uint64_t window_bytes)
{
    CDMA_ASSERT(window_bytes > 0 || original_bytes == 0,
                "spill needs a window size");
    SpillTicket ticket;
    if (!free_tickets_.empty()) {
        ticket = free_tickets_.back();
        free_tickets_.pop_back();
    } else {
        ticket = static_cast<SpillTicket>(records_.size());
        records_.emplace_back();
    }
    Record &record = records_[ticket];
    record.live = true;
    record.original_bytes = original_bytes;
    record.window_bytes = window_bytes;
    record.window_sizes.clear(); // capacity survives ticket recycling
    record.shards.clear();
    ++stats_.stored_buffers;
    ++stats_.live_buffers;
    return ticket;
}

void
SpillArena::appendShard(SpillTicket ticket, const CompressedShard &shard)
{
    liveRecord(ticket); // asserts the ticket is live
    Record &record = records_[ticket];

    StoredShard stored;
    stored.payload_bytes = shard.payload.size();
    stored.raw_bytes = shard.raw_bytes;
    stored.wire_bytes = shard.effectiveBytes(record.window_bytes);
    stored.first_window = shard.first_window;
    stored.window_begin = record.window_sizes.size();
    stored.window_count = shard.window_sizes.size();
    stored.crc32c = shard.crc32c;
    stored.raw_framed = shard.raw_framed;
    stored.codec = shard.codec;
    if (stored.payload_bytes > 0) {
        stored.slot = allocateSlot(stored.payload_bytes);
        std::memcpy(slotData(stored.slot), shard.payload.data(),
                    stored.payload_bytes);
    }
    record.window_sizes.insert(record.window_sizes.end(),
                               shard.window_sizes.begin(),
                               shard.window_sizes.end());
    record.shards.push_back(stored);
    ++stats_.stored_shards;
    stats_.live_payload_bytes += stored.payload_bytes;
    stats_.high_water_payload_bytes = std::max(
        stats_.high_water_payload_bytes, stats_.live_payload_bytes);
}

SpillTicket
SpillArena::store(const CompressedBuffer &buffer,
                  uint64_t windows_per_shard)
{
    CDMA_ASSERT(windows_per_shard > 0, "shards need at least one window");
    const SpillTicket ticket =
        beginSpill(buffer.original_bytes, buffer.window_bytes);
    const uint64_t windows = buffer.window_sizes.size();
    uint64_t payload_cursor = 0;
    uint64_t raw_cursor = 0;
    CompressedShard shard;
    shard.codec = buffer.codec;
    for (uint64_t first = 0; first < windows;
         first += windows_per_shard) {
        const uint64_t last =
            std::min(windows, first + windows_per_shard);
        shard.index = first / windows_per_shard;
        shard.first_window = first;
        shard.window_sizes.assign(buffer.window_sizes.begin() +
                                      static_cast<ptrdiff_t>(first),
                                  buffer.window_sizes.begin() +
                                      static_cast<ptrdiff_t>(last));
        uint64_t payload_bytes = 0;
        for (const uint32_t size : shard.window_sizes)
            payload_bytes += size;
        shard.payload.assign(buffer.payload.begin() +
                                 static_cast<ptrdiff_t>(payload_cursor),
                             buffer.payload.begin() +
                                 static_cast<ptrdiff_t>(payload_cursor +
                                                        payload_bytes));
        payload_cursor += payload_bytes;
        const uint64_t raw_end = std::min<uint64_t>(
            buffer.original_bytes, last * buffer.window_bytes);
        shard.raw_bytes = raw_end - raw_cursor;
        raw_cursor = raw_end;
        // Stitched buffers carry no per-shard CRC, so frame the shard
        // here — same integrity contract as the streaming offload path.
        shard.crc32c = activeKernels().crc32(0, shard.payload.data(),
                                             shard.payload.size());
        appendShard(ticket, shard);
    }
    CDMA_ASSERT(payload_cursor == buffer.payload.size() &&
                    raw_cursor == buffer.original_bytes,
                "spill store did not cover the buffer");
    return ticket;
}

const SpillArena::Record &
SpillArena::liveRecord(SpillTicket ticket) const
{
    CDMA_ASSERT(ticket < records_.size() && records_[ticket].live,
                "spill ticket %u is not live",
                static_cast<unsigned>(ticket));
    return records_[ticket];
}

uint64_t
SpillArena::originalBytes(SpillTicket ticket) const
{
    return liveRecord(ticket).original_bytes;
}

uint64_t
SpillArena::windowBytes(SpillTicket ticket) const
{
    return liveRecord(ticket).window_bytes;
}

uint64_t
SpillArena::wireBytes(SpillTicket ticket) const
{
    uint64_t total = 0;
    for (const StoredShard &shard : liveRecord(ticket).shards)
        total += shard.wire_bytes;
    return total;
}

uint64_t
SpillArena::payloadBytes(SpillTicket ticket) const
{
    uint64_t total = 0;
    for (const StoredShard &shard : liveRecord(ticket).shards)
        total += shard.payload_bytes;
    return total;
}

size_t
SpillArena::shardCount(SpillTicket ticket) const
{
    return liveRecord(ticket).shards.size();
}

SpillShardView
SpillArena::shard(SpillTicket ticket, size_t index) const
{
    const Record &record = liveRecord(ticket);
    CDMA_ASSERT(index < record.shards.size(),
                "shard %zu out of range (%zu stored)", index,
                record.shards.size());
    const StoredShard &stored = record.shards[index];
    SpillShardView view;
    if (stored.payload_bytes > 0) {
        view.payload = std::span<const uint8_t>(slotData(stored.slot),
                                                stored.payload_bytes);
    }
    view.window_sizes = std::span<const uint32_t>(
        record.window_sizes.data() + stored.window_begin,
        stored.window_count);
    view.first_window = stored.first_window;
    view.raw_bytes = stored.raw_bytes;
    view.wire_bytes = stored.wire_bytes;
    view.crc32c = stored.crc32c;
    view.raw_framed = stored.raw_framed;
    view.codec = stored.codec;
    return view;
}

CompressedBuffer
SpillArena::materialize(SpillTicket ticket) const
{
    const Record &record = liveRecord(ticket);
    CompressedBuffer buffer;
    buffer.original_bytes = record.original_bytes;
    buffer.window_bytes = record.window_bytes;
    buffer.window_sizes = record.window_sizes;
    // A stitched buffer has one codec slot; mixed-codec spills only
    // round-trip through the per-shard views (materialize() is the
    // tests/interop path, which stores one codec per spill).
    if (!record.shards.empty())
        buffer.codec = record.shards.front().codec;
    buffer.payload.reserve(payloadBytes(ticket));
    for (const StoredShard &stored : record.shards) {
        const uint8_t *data =
            stored.payload_bytes > 0 ? slotData(stored.slot) : nullptr;
        buffer.payload.insert(buffer.payload.end(), data,
                              data + stored.payload_bytes);
    }
    return buffer;
}

void
SpillArena::release(SpillTicket ticket)
{
    liveRecord(ticket); // asserts the ticket is live
    Record &record = records_[ticket];
    for (const StoredShard &stored : record.shards) {
        if (stored.payload_bytes > 0) {
            classes_[stored.slot.size_class].free_list.push_back(
                stored.slot);
            stats_.live_slot_bytes -=
                classes_[stored.slot.size_class].slot_bytes;
        }
        stats_.live_payload_bytes -= stored.payload_bytes;
    }
    record.live = false;
    --stats_.live_buffers;
    free_tickets_.push_back(ticket);
}

namespace {

/** Re-stream every shard of @p src's spill into @p dst (the tiers
 *  share no slabs, so tier moves are byte copies through a rebuilt
 *  CompressedShard). Returns the destination ticket. */
SpillTicket
copySpill(const SpillArena &src, SpillTicket src_ticket, SpillArena &dst)
{
    const SpillTicket dst_ticket = dst.beginSpill(
        src.originalBytes(src_ticket), src.windowBytes(src_ticket));
    const size_t shards = src.shardCount(src_ticket);
    CompressedShard shard;
    for (size_t i = 0; i < shards; ++i) {
        const SpillShardView view = src.shard(src_ticket, i);
        shard.index = i;
        shard.first_window = view.first_window;
        shard.raw_bytes = view.raw_bytes;
        shard.payload.assign(view.payload.begin(), view.payload.end());
        shard.window_sizes.assign(view.window_sizes.begin(),
                                  view.window_sizes.end());
        shard.crc32c = view.crc32c;
        shard.raw_framed = view.raw_framed;
        shard.codec = view.codec;
        dst.appendShard(dst_ticket, shard);
    }
    return dst_ticket;
}

} // namespace

TieredSpillArena::TieredSpillArena(uint64_t host_capacity_bytes,
                                   uint64_t min_slot_bytes)
    : host_(min_slot_bytes), backing_(min_slot_bytes),
      host_capacity_bytes_(host_capacity_bytes)
{
    tier_stats_.host_capacity_bytes = host_capacity_bytes;
}

void
TieredSpillArena::setTrace(obs::TraceRecorder *trace)
{
    trace_ = trace;
    if (trace_ != nullptr) {
        tier_track_ = trace_->track("arena", "tier");
        occupancy_track_ =
            trace_->counterTrack("arena", "host occupancy bytes");
    }
}

const TieredSpillArena::Slot &
TieredSpillArena::liveSlot(SpillTicket ticket) const
{
    CDMA_ASSERT(ticket < slots_.size() && slots_[ticket].live,
                "tiered spill ticket %u is not live",
                static_cast<unsigned>(ticket));
    return slots_[ticket];
}

SpillTicket
TieredSpillArena::beginSpill(uint64_t original_bytes,
                             uint64_t window_bytes)
{
    SpillTicket ticket;
    if (!free_slots_.empty()) {
        ticket = free_slots_.back();
        free_slots_.pop_back();
    } else {
        ticket = static_cast<SpillTicket>(slots_.size());
        slots_.emplace_back();
    }
    Slot &slot = slots_[ticket];
    slot.live = true;
    slot.sealed = false;
    slot.backing = false;
    slot.inner = host_.beginSpill(original_bytes, window_bytes);
    return ticket;
}

void
TieredSpillArena::appendShard(SpillTicket ticket,
                              const CompressedShard &shard)
{
    const Slot &slot = liveSlot(ticket);
    CDMA_ASSERT(!slot.sealed && !slot.backing,
                "cannot append to a sealed spill");
    host_.appendShard(slot.inner, shard);
    // An oversized in-progress spill evicts its sealed neighbours as it
    // grows; it is itself ineligible (not in the FIFO until sealed).
    enforceCapacity();
}

void
TieredSpillArena::seal(SpillTicket ticket)
{
    liveSlot(ticket);
    Slot &slot = slots_[ticket];
    CDMA_ASSERT(!slot.sealed, "spill sealed twice");
    slot.sealed = true;
    eviction_fifo_.push_back(ticket);
    enforceCapacity();
}

void
TieredSpillArena::enforceCapacity(SpillTicket pinned)
{
    if (host_capacity_bytes_ == 0)
        return;
    std::deque<SpillTicket> skipped;
    while (host_.stats().live_payload_bytes > host_capacity_bytes_ &&
           !eviction_fifo_.empty()) {
        const SpillTicket ticket = eviction_fifo_.front();
        eviction_fifo_.pop_front();
        if (ticket == pinned) {
            // Keep its place in the order for the NEXT pass.
            skipped.push_back(ticket);
            continue;
        }
        // Entries go stale when their spill is released; validate
        // lazily instead of erasing mid-deque.
        Slot &slot = slots_[ticket];
        if (!slot.live || slot.backing || !slot.sealed)
            continue;
        const uint64_t payload = host_.payloadBytes(slot.inner);
        const SpillTicket moved = copySpill(host_, slot.inner, backing_);
        host_.release(slot.inner);
        slot.inner = moved;
        slot.backing = true;
        ++tier_stats_.evictions;
        tier_stats_.ssd_write_bytes += payload;
        if (trace_ != nullptr) {
            trace_->instant(tier_track_, "evict", trace_->tick(),
                            obs::TraceArgs{{"ticket", ticket},
                                           {"payload_bytes", payload}});
            trace_->counter(occupancy_track_, trace_->tick(),
                            static_cast<double>(
                                host_.stats().live_payload_bytes));
        }
    }
    for (auto it = skipped.rbegin(); it != skipped.rend(); ++it)
        eviction_fifo_.push_front(*it);
}

bool
TieredSpillArena::onBackingTier(SpillTicket ticket) const
{
    return liveSlot(ticket).backing;
}

uint64_t
TieredSpillArena::promote(SpillTicket ticket)
{
    liveSlot(ticket);
    Slot &slot = slots_[ticket];
    if (!slot.backing)
        return 0;
    const uint64_t payload = backing_.payloadBytes(slot.inner);
    const SpillTicket moved = copySpill(backing_, slot.inner, host_);
    backing_.release(slot.inner);
    slot.inner = moved;
    slot.backing = false;
    ++tier_stats_.promotions;
    tier_stats_.ssd_read_bytes += payload;
    if (trace_ != nullptr) {
        trace_->instant(tier_track_, "promote", trace_->tick(),
                        obs::TraceArgs{{"ticket", ticket},
                                       {"payload_bytes", payload}});
        trace_->counter(occupancy_track_, trace_->tick(),
                        static_cast<double>(
                            host_.stats().live_payload_bytes));
    }
    // Back in the host tier, back in eviction order (its stale FIFO
    // entry, if any, was consumed when it was first evicted). The
    // promoted spill itself is pinned through this pass — the whole
    // point of the readback is to read it next.
    eviction_fifo_.push_back(ticket);
    enforceCapacity(ticket);
    return payload;
}

uint64_t
TieredSpillArena::originalBytes(SpillTicket ticket) const
{
    const Slot &slot = liveSlot(ticket);
    return tierOf(slot).originalBytes(slot.inner);
}

uint64_t
TieredSpillArena::windowBytes(SpillTicket ticket) const
{
    const Slot &slot = liveSlot(ticket);
    return tierOf(slot).windowBytes(slot.inner);
}

uint64_t
TieredSpillArena::wireBytes(SpillTicket ticket) const
{
    const Slot &slot = liveSlot(ticket);
    return tierOf(slot).wireBytes(slot.inner);
}

uint64_t
TieredSpillArena::payloadBytes(SpillTicket ticket) const
{
    const Slot &slot = liveSlot(ticket);
    return tierOf(slot).payloadBytes(slot.inner);
}

size_t
TieredSpillArena::shardCount(SpillTicket ticket) const
{
    const Slot &slot = liveSlot(ticket);
    return tierOf(slot).shardCount(slot.inner);
}

SpillShardView
TieredSpillArena::shard(SpillTicket ticket, size_t index) const
{
    const Slot &slot = liveSlot(ticket);
    return tierOf(slot).shard(slot.inner, index);
}

CompressedBuffer
TieredSpillArena::materialize(SpillTicket ticket) const
{
    const Slot &slot = liveSlot(ticket);
    return tierOf(slot).materialize(slot.inner);
}

void
TieredSpillArena::release(SpillTicket ticket)
{
    liveSlot(ticket);
    Slot &slot = slots_[ticket];
    (slot.backing ? backing_ : host_).release(slot.inner);
    slot.live = false;
    free_slots_.push_back(ticket);
}

} // namespace cdma
