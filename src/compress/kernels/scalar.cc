/**
 * @file
 * Portable scalar kernel backend. These are the reference
 * implementations every other backend must match byte for byte; they are
 * also the fastest portable forms we know (branchless compaction,
 * 64-bit strides), so forcing CDMA_KERNEL_BACKEND=scalar costs wide
 * loads, not algorithmic quality.
 */

#include "compress/kernels/kernels.hh"

#include <array>
#include <bit>
#include <cstring>

namespace cdma {

namespace {

inline uint32_t
loadWord(const uint8_t *p)
{
    uint32_t value;
    std::memcpy(&value, p, sizeof(value));
    return value;
}

/**
 * Branchless mask-and-compact: every word is stored unconditionally and
 * the write pointer advances only for non-zero words (the software
 * analogue of the hardware's prefix-sum shift network, Figure 10a), with
 * a 32-byte OR fast-skip for all-zero 8-word sub-blocks — the common
 * case in sparse activation pages.
 */
uint32_t
zvcCompactGroupScalar(const uint8_t *src, uint32_t words, uint8_t *dst)
{
    uint32_t mask = 0;
    uint32_t w = 0;
    while (w + 8 <= words) {
        const uint8_t *p = src + w * 4;
        uint64_t chunk[4];
        std::memcpy(chunk, p, sizeof(chunk));
        if ((chunk[0] | chunk[1] | chunk[2] | chunk[3]) != 0) {
            for (int j = 0; j < 8; ++j) {
                const uint32_t value = loadWord(p + j * 4);
                std::memcpy(dst, &value, 4);
                const uint32_t nz = value != 0;
                dst += nz * 4;
                mask |= nz << (w + static_cast<uint32_t>(j));
            }
        }
        w += 8;
    }
    for (; w < words; ++w) {
        const uint32_t value = loadWord(src + w * 4);
        std::memcpy(dst, &value, 4);
        const uint32_t nz = value != 0;
        dst += nz * 4;
        mask |= nz << w;
    }
    return mask;
}

/**
 * Mask-driven scatter, the inverse of the compaction above: zero the
 * whole group once, then place the packed payload words with batched
 * memcpy runs (countr_zero to skip zero spans, countr_one to size each
 * contiguous non-zero run) — per-run bulk copies instead of per-word
 * branches, the fastest portable form we know.
 */
uint32_t
zvcExpandGroupScalar(const uint8_t *src, uint32_t mask, uint32_t words,
                     uint8_t *dst)
{
    std::memset(dst, 0, static_cast<size_t>(words) * 4);
    size_t consumed = 0;
    uint32_t bits = mask;
    uint32_t index = 0;
    while (bits) {
        const int skip = std::countr_zero(bits);
        bits >>= skip;
        index += static_cast<uint32_t>(skip);
        const int run = std::countr_one(bits);
        std::memcpy(dst + index * 4, src + consumed,
                    static_cast<size_t>(run) * 4);
        consumed += static_cast<size_t>(run) * 4;
        index += static_cast<uint32_t>(run);
        bits = run < 32 ? bits >> run : 0;
    }
    return static_cast<uint32_t>(consumed);
}

/** 32-byte OR probes through zero pages, word-at-a-time at the edge. */
uint64_t
zeroRunWordsScalar(const uint8_t *words, uint64_t limit)
{
    uint64_t run = 0;
    while (run + 8 <= limit) {
        uint64_t chunk[4];
        std::memcpy(chunk, words + run * 4, sizeof(chunk));
        if ((chunk[0] | chunk[1] | chunk[2] | chunk[3]) != 0)
            break;
        run += 8;
    }
    while (run < limit && loadWord(words + run * 4) == 0)
        ++run;
    return run;
}

/** Two words per probe over literal spans (endian-neutral loads). */
uint64_t
literalRunWordsScalar(const uint8_t *words, uint64_t limit)
{
    uint64_t run = 0;
    while (run + 2 <= limit) {
        const uint32_t lo = loadWord(words + run * 4);
        const uint32_t hi = loadWord(words + run * 4 + 4);
        if (lo == 0)
            return run;
        if (hi == 0)
            return run + 1;
        run += 2;
    }
    if (run < limit && loadWord(words + run * 4) != 0)
        ++run;
    return run;
}

/**
 * 64-bit XOR stride; the first differing byte index falls out of a
 * trailing-zero count on little-endian hosts (byte 0 is the low lane)
 * and a leading-zero count on big-endian ones.
 */
size_t
matchLengthScalar(const uint8_t *a, const uint8_t *b, size_t max)
{
    size_t len = 0;
    while (len + 8 <= max) {
        uint64_t x, y;
        std::memcpy(&x, a + len, sizeof(x));
        std::memcpy(&y, b + len, sizeof(y));
        const uint64_t diff = x ^ y;
        if (diff != 0) {
            if constexpr (std::endian::native == std::endian::little) {
                return len +
                    static_cast<size_t>(std::countr_zero(diff)) / 8;
            } else {
                return len +
                    static_cast<size_t>(std::countl_zero(diff)) / 8;
            }
        }
        len += 8;
    }
    while (len < max && a[len] == b[len])
        ++len;
    return len;
}

void
copyBytesScalar(uint8_t *dst, const uint8_t *src, size_t n)
{
    if (n != 0)
        std::memcpy(dst, src, n);
}

void
zeroFillBytesScalar(uint8_t *dst, size_t n)
{
    if (n != 0)
        std::memset(dst, 0, n);
}

/**
 * Slice-by-8 CRC32C tables: table[0] is the classic reflected
 * byte-at-a-time table for polynomial 0x1EDC6F41 (reflected 0x82F63B78);
 * table[k][b] extends a byte processed k positions earlier, so eight
 * table lookups retire eight input bytes per 64-bit load.
 */
constexpr std::array<std::array<uint32_t, 256>, 8>
makeCrc32cTables()
{
    std::array<std::array<uint32_t, 256>, 8> tables{};
    for (uint32_t b = 0; b < 256; ++b) {
        uint32_t crc = b;
        for (int bit = 0; bit < 8; ++bit)
            crc = (crc >> 1) ^ ((crc & 1u) ? 0x82F63B78u : 0u);
        tables[0][b] = crc;
    }
    for (size_t k = 1; k < 8; ++k) {
        for (uint32_t b = 0; b < 256; ++b) {
            tables[k][b] =
                (tables[k - 1][b] >> 8) ^ tables[0][tables[k - 1][b] & 0xFFu];
        }
    }
    return tables;
}

constexpr auto kCrc32c = makeCrc32cTables();

uint32_t
crc32Scalar(uint32_t seed, const uint8_t *data, size_t n)
{
    uint32_t crc = ~seed;
    size_t i = 0;
    while (i + 8 <= n) {
        uint64_t word;
        std::memcpy(&word, data + i, sizeof(word));
        word ^= crc;
        crc = kCrc32c[7][word & 0xFFu] ^
            kCrc32c[6][(word >> 8) & 0xFFu] ^
            kCrc32c[5][(word >> 16) & 0xFFu] ^
            kCrc32c[4][(word >> 24) & 0xFFu] ^
            kCrc32c[3][(word >> 32) & 0xFFu] ^
            kCrc32c[2][(word >> 40) & 0xFFu] ^
            kCrc32c[1][(word >> 48) & 0xFFu] ^
            kCrc32c[0][(word >> 56) & 0xFFu];
        i += 8;
    }
    for (; i < n; ++i)
        crc = (crc >> 8) ^ kCrc32c[0][(crc ^ data[i]) & 0xFFu];
    return ~crc;
}

} // namespace

const KernelOps &
scalarKernels()
{
    static constexpr KernelOps ops = {
        "scalar",
        zvcCompactGroupScalar,
        zvcExpandGroupScalar,
        zeroRunWordsScalar,
        literalRunWordsScalar,
        matchLengthScalar,
        copyBytesScalar,
        zeroFillBytesScalar,
        crc32Scalar,
    };
    return ops;
}

} // namespace cdma
