/** @file Unit tests for the compression-placement crossbar model. */

#include <gtest/gtest.h>

#include "gpu/crossbar.hh"

namespace cdma {
namespace {

TEST(Crossbar, McPlacementNeedsOnlyPcieRate)
{
    CrossbarModel model;
    const std::vector<CrossbarTransfer> mix = {
        {1'000'000, 2.0}, {1'000'000, 13.8}};
    const auto demand =
        model.demand(CompressionPlacement::MemoryController, mix);
    EXPECT_DOUBLE_EQ(demand.peak_bandwidth, 16e9);
    EXPECT_DOUBLE_EQ(demand.overprovision_factor, 1.0);
}

TEST(Crossbar, DmaPlacementScalesWithRatio)
{
    // The Section V-B argument: 13.8x compression at 16 GB/s PCIe needs
    // 220.8 GB/s of crossbar bandwidth into the DMA engine.
    CrossbarModel model;
    const std::vector<CrossbarTransfer> mix = {{1'000'000, 13.8}};
    const auto demand =
        model.demand(CompressionPlacement::DmaEngine, mix);
    EXPECT_NEAR(demand.peak_bandwidth, 220.8e9, 1e6);
    EXPECT_NEAR(demand.overprovision_factor, 13.8, 1e-9);
}

TEST(Crossbar, McPlacementMovesCompressedBytes)
{
    CrossbarModel model;
    const std::vector<CrossbarTransfer> mix = {{1'000'000, 4.0}};
    const auto mc =
        model.demand(CompressionPlacement::MemoryController, mix);
    const auto dma = model.demand(CompressionPlacement::DmaEngine, mix);
    EXPECT_EQ(mc.total_bytes, 250'000u);
    EXPECT_EQ(dma.total_bytes, 1'000'000u);
}

TEST(Crossbar, IncompressibleTransfersEqualizePlacements)
{
    CrossbarModel model;
    const std::vector<CrossbarTransfer> mix = {{1'000'000, 1.0}};
    const auto mc =
        model.demand(CompressionPlacement::MemoryController, mix);
    const auto dma = model.demand(CompressionPlacement::DmaEngine, mix);
    EXPECT_DOUBLE_EQ(mc.peak_bandwidth, dma.peak_bandwidth);
    EXPECT_EQ(mc.total_bytes, dma.total_bytes);
}

TEST(Crossbar, PeakIsMaxOverMix)
{
    CrossbarModel model;
    const std::vector<CrossbarTransfer> mix = {
        {100, 2.0}, {100, 8.0}, {100, 3.0}};
    const auto demand =
        model.demand(CompressionPlacement::DmaEngine, mix);
    EXPECT_DOUBLE_EQ(demand.peak_bandwidth, 8.0 * 16e9);
}

TEST(Crossbar, PlacementNames)
{
    EXPECT_NE(placementName(CompressionPlacement::MemoryController),
              placementName(CompressionPlacement::DmaEngine));
}

} // namespace
} // namespace cdma
