#include "common/logging.hh"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace cdma {

namespace {

LogSink g_sink;
LogLevel g_level = logLevelFromEnv();

const char *
levelTag(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "debug";
      case LogLevel::Info:  return "info";
      case LogLevel::Warn:  return "warn";
      case LogLevel::Error: return "error";
    }
    return "?";
}

std::string
vformat(const char *fmt, va_list ap)
{
    va_list probe;
    va_copy(probe, ap);
    const int needed = std::vsnprintf(nullptr, 0, fmt, probe);
    va_end(probe);
    if (needed <= 0)
        return std::string();
    std::string out(static_cast<size_t>(needed), '\0');
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap);
    return out;
}

/** Deliver an already-filtered line to the sink or stderr. */
void
emit(LogLevel level, const char *tag, const std::string &body)
{
    if (g_sink) {
        g_sink(level, body);
        return;
    }
    std::fprintf(stderr, "[%s] %s\n", tag, body.c_str());
}

void
vlogMessage(LogLevel level, const char *fmt, va_list ap)
{
    if (level < g_level)
        return;
    emit(level, levelTag(level), vformat(fmt, ap));
}

} // namespace

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

LogLevel
logLevel()
{
    return g_level;
}

bool
parseLogLevel(const std::string &name, LogLevel &out)
{
    std::string lower(name);
    std::transform(lower.begin(), lower.end(), lower.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (lower == "debug") {
        out = LogLevel::Debug;
    } else if (lower == "info") {
        out = LogLevel::Info;
    } else if (lower == "warn" || lower == "warning") {
        out = LogLevel::Warn;
    } else if (lower == "error") {
        out = LogLevel::Error;
    } else {
        return false;
    }
    return true;
}

LogLevel
logLevelFromEnv()
{
    const char *value = std::getenv("CDMA_LOG_LEVEL");
    if (value == nullptr || *value == '\0')
        return LogLevel::Info;
    LogLevel level = LogLevel::Info;
    if (!parseLogLevel(value, level)) {
        // Bypass the (not-yet-seeded) filter: a mistyped level must be
        // visible or the user will wonder why their setting is ignored.
        emit(LogLevel::Warn, "warn",
             "CDMA_LOG_LEVEL='" + std::string(value) +
                 "' is not one of error/warn/info/debug; using info");
        return LogLevel::Info;
    }
    return level;
}

void
setLogSink(LogSink sink)
{
    g_sink = std::move(sink);
}

void
logMessage(LogLevel level, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vlogMessage(level, fmt, ap);
    va_end(ap);
}

void
debug(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vlogMessage(LogLevel::Debug, fmt, ap);
    va_end(ap);
}

void
inform(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vlogMessage(LogLevel::Info, fmt, ap);
    va_end(ap);
}

void
warn(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vlogMessage(LogLevel::Warn, fmt, ap);
    va_end(ap);
}

bool
warnRateLimited(WarnRateLimit &limit, const char *fmt, ...)
{
    ++limit.seen;
    if (limit.seen > limit.max_emitted)
        return false;
    va_list ap;
    va_start(ap, fmt);
    vlogMessage(LogLevel::Warn, fmt, ap);
    va_end(ap);
    if (limit.seen == limit.max_emitted) {
        logMessage(LogLevel::Warn,
                   "(%llu warnings from this site; further ones suppressed)",
                   static_cast<unsigned long long>(limit.max_emitted));
    }
    return true;
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    emit(LogLevel::Error, "fatal", vformat(fmt, ap));
    va_end(ap);
    std::exit(1);
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    emit(LogLevel::Error, "panic", vformat(fmt, ap));
    va_end(ap);
    std::abort();
}

} // namespace cdma
