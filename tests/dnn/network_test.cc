/** @file Unit tests for the Network container and activation records. */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "dnn/activation.hh"
#include "dnn/conv.hh"
#include "dnn/dropout.hh"
#include "dnn/fc.hh"
#include "dnn/network.hh"
#include "dnn/pool.hh"

namespace cdma {
namespace {

Network
makeSmallNet(Rng &rng)
{
    Network net;
    net.add(std::make_unique<Conv2D>("conv1", 3, ConvSpec{4, 3, 1, 1},
                                     rng));
    net.add(std::make_unique<ReLU>("conv1_relu"));
    net.add(std::make_unique<Pool2D>("pool1",
                                     PoolSpec{2, 2, PoolMode::Max}));
    net.add(std::make_unique<FullyConnected>("fc", 4 * 4 * 4, 10, rng));
    return net;
}

TEST(Network, OutputShapePropagates)
{
    Rng rng(20);
    Network net = makeSmallNet(rng);
    EXPECT_EQ(net.outputShape(Shape4D{2, 3, 8, 8}),
              (Shape4D{2, 10, 1, 1}));
}

TEST(Network, ForwardRetainsEveryLayerOutput)
{
    Rng rng(21);
    Network net = makeSmallNet(rng);
    Tensor4D in(Shape4D{2, 3, 8, 8});
    in.fill(0.5f);
    net.forward(in);
    ASSERT_EQ(net.outputs().size(), net.size());
    EXPECT_EQ(net.outputs()[0].shape(), (Shape4D{2, 4, 8, 8}));
    EXPECT_EQ(net.outputs()[3].shape(), (Shape4D{2, 10, 1, 1}));
}

TEST(Network, ReluFollowsAnnotationSetByBuilder)
{
    Rng rng(22);
    Network net = makeSmallNet(rng);
    EXPECT_TRUE(net.layer(0).reluFollows());  // conv1 feeds a ReLU
    EXPECT_FALSE(net.layer(3).reluFollows()); // fc does not
}

TEST(Network, ActivationRecordsSkipInPlaceLayers)
{
    Rng rng(23);
    Network net = makeSmallNet(rng);
    Tensor4D in(Shape4D{1, 3, 8, 8});
    in.fill(1.0f);
    net.forward(in);
    const auto records = net.activationRecords();
    ASSERT_EQ(records.size(), 3u); // conv1, pool1, fc
    EXPECT_EQ(records[0].label, "conv1");
    EXPECT_EQ(records[1].label, "pool1");
    EXPECT_EQ(records[2].label, "fc");
}

TEST(Network, ConvRecordMeasuredAfterRelu)
{
    Rng rng(24);
    Network net = makeSmallNet(rng);
    Tensor4D in(Shape4D{2, 3, 8, 8});
    Rng data_rng(25);
    for (float &v : in.data())
        v = static_cast<float>(data_rng.normal());
    net.forward(in);
    const auto records = net.activationRecords();
    // conv1's record reflects the ReLU output (its output_index points at
    // the relu layer), so density is well below 1.
    EXPECT_EQ(records[0].output_index, 1u);
    EXPECT_LT(records[0].density, 0.95);
    EXPECT_TRUE(records[0].relu_sparse);
}

TEST(Network, InPlaceTypeClassification)
{
    EXPECT_TRUE(Network::isInPlaceType("relu"));
    EXPECT_TRUE(Network::isInPlaceType("lrn"));
    EXPECT_TRUE(Network::isInPlaceType("dropout"));
    EXPECT_FALSE(Network::isInPlaceType("conv"));
    EXPECT_FALSE(Network::isInPlaceType("pool"));
    EXPECT_FALSE(Network::isInPlaceType("fc"));
    EXPECT_FALSE(Network::isInPlaceType("concat"));
}

TEST(Network, StepUpdatesParameters)
{
    Rng rng(26);
    Network net = makeSmallNet(rng);
    Tensor4D in(Shape4D{1, 3, 8, 8});
    in.fill(1.0f);
    net.forward(in);
    Tensor4D dy(Shape4D{1, 10, 1, 1});
    dy.fill(0.1f);
    net.backward(dy);

    // Snapshot a parameter, step, confirm change.
    auto params = net.layer(0).params();
    const float before = params[0]->value[0];
    net.step(SgdConfig{0.1f, 0.0f, 0.0f});
    // Gradient may be zero for this exact weight only with measure-zero
    // probability given dense input; check parameter vector moved.
    float delta = 0.0f;
    for (float v : params[0]->value)
        delta += std::abs(v - before);
    EXPECT_GT(delta, 0.0f);

    // Gradients cleared after the step.
    for (float g : params[0]->grad)
        EXPECT_EQ(g, 0.0f);
}

TEST(Network, ParamCountMatchesArchitecture)
{
    Rng rng(27);
    Network net = makeSmallNet(rng);
    // conv: 4*3*3*3 + 4 bias; fc: 64*10 + 10 bias.
    EXPECT_EQ(net.paramCount(), 4u * 3 * 3 * 3 + 4 + 64 * 10 + 10);
}

TEST(Network, SetTrainingTogglesDropout)
{
    Rng rng(28);
    Network net;
    net.add(std::make_unique<Dropout>("drop", 0.5f, rng));
    Tensor4D in(Shape4D{1, 1, 32, 32});
    in.fill(1.0f);

    net.setTraining(false);
    net.forward(in);
    EXPECT_DOUBLE_EQ(net.outputs()[0].density(), 1.0);

    net.setTraining(true);
    net.forward(in);
    EXPECT_LT(net.outputs()[0].density(), 0.7);
}

} // namespace
} // namespace cdma
