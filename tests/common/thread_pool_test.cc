/** @file Tests for the fork-join worker pool behind ParallelCompressor. */

#include <atomic>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.hh"

namespace cdma {
namespace {

TEST(ThreadPool, SingleLaneRunsInline)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.lanes(), 1u);
    std::vector<uint64_t> order;
    pool.parallelFor(5, [&](uint64_t i) { order.push_back(i); });
    EXPECT_EQ(order, (std::vector<uint64_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, EveryIndexRunsExactlyOnce)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.lanes(), 4u);
    constexpr uint64_t kCount = 10000;
    std::vector<std::atomic<int>> hits(kCount);
    pool.parallelFor(kCount, [&](uint64_t i) { hits[i].fetch_add(1); });
    for (uint64_t i = 0; i < kCount; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, ZeroCountIsANoOp)
{
    ThreadPool pool(4);
    std::atomic<int> calls{0};
    pool.parallelFor(0, [&](uint64_t) { calls.fetch_add(1); });
    EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, FewerItemsThanLanes)
{
    ThreadPool pool(8);
    std::vector<std::atomic<int>> hits(3);
    pool.parallelFor(3, [&](uint64_t i) { hits[i].fetch_add(1); });
    for (size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, ReusableAcrossManyDispatches)
{
    ThreadPool pool(4);
    for (int round = 0; round < 50; ++round) {
        std::atomic<uint64_t> sum{0};
        pool.parallelFor(100, [&](uint64_t i) { sum.fetch_add(i + 1); });
        EXPECT_EQ(sum.load(), 100u * 101u / 2);
    }
}

TEST(ThreadPool, WorkerExceptionRethrowsAtRendezvous)
{
    // A lane body that throws must not kill the worker thread: the
    // first exception is captured, the remaining indices are abandoned,
    // and the exception surfaces on the calling thread.
    ThreadPool pool(4);
    std::atomic<int> executed{0};
    try {
        pool.parallelFor(10000, [&](uint64_t i) {
            if (i == 17)
                throw std::runtime_error("lane failure at 17");
            executed.fetch_add(1);
        });
        FAIL() << "parallelFor swallowed the worker exception";
    } catch (const std::runtime_error &error) {
        EXPECT_EQ(std::string(error.what()), "lane failure at 17");
    }
    // Abandonment: the dispatch stopped early rather than draining the
    // whole index space behind a poisoned run.
    EXPECT_LT(executed.load(), 10000);
}

TEST(ThreadPool, PoolSurvivesAndIsReusableAfterAnException)
{
    ThreadPool pool(4);
    for (int round = 0; round < 5; ++round) {
        EXPECT_THROW(pool.parallelFor(64,
                                      [&](uint64_t i) {
                                          if (i == 7)
                                              throw std::runtime_error(
                                                  "boom");
                                      }),
                     std::runtime_error);
        std::atomic<int> calls{0};
        pool.parallelFor(64, [&](uint64_t) { calls.fetch_add(1); });
        EXPECT_EQ(calls.load(), 64) << "round " << round;
    }
}

TEST(ThreadPool, InlineLaneExceptionPropagatesDirectly)
{
    ThreadPool pool(1);
    std::vector<uint64_t> ran;
    EXPECT_THROW(pool.parallelFor(5,
                                  [&](uint64_t i) {
                                      if (i == 2)
                                          throw std::logic_error("inline");
                                      ran.push_back(i);
                                  }),
                 std::logic_error);
    // Serial semantics: indices before the throwing one ran, later
    // ones were never reached.
    EXPECT_EQ(ran, (std::vector<uint64_t>{0, 1}));
}

TEST(ThreadPool, DefaultUsesHardwareConcurrency)
{
    ThreadPool pool; // lanes = 0 -> hardware concurrency (>= 1)
    EXPECT_GE(pool.lanes(), 1u);
    std::atomic<int> calls{0};
    pool.parallelFor(17, [&](uint64_t) { calls.fetch_add(1); });
    EXPECT_EQ(calls.load(), 17);
}

} // namespace
} // namespace cdma
