/**
 * @file
 * Pluggable SIMD kernel layer for the codec stack. The paper's CPE/DPE
 * datapaths get their throughput from wide fixed-function mask-and-compact
 * hardware (Section V-B, Figure 10); every software codec in this repo
 * reduces to the same few primitive hot operations — zero-mask formation
 * over 32-bit activation words, left-pack compaction of the non-zero
 * words, zero/literal run scanning, and bulk byte-sink copies. KernelOps
 * factors those primitives into one function-pointer table with a
 * portable scalar backend, an AVX2 backend (vpcmpeqd + vpmovmskb mask
 * formation, shuffle-table left-packing, wide run scans) and an AVX-512
 * backend (vpcompressd left-pack / vpexpandd scatter — the mask-driven
 * compaction is a single native instruction there — with 64-byte-stride
 * scans), so vectorizing the primitive once lifts ZVC, RLE and the
 * DEFLATE tokenizer together.
 *
 * The table covers both directions: the compaction ops feed the offload
 * leg, and the expand ops (zvcExpandGroup's mask-driven scatter — the
 * inverse shuffle-table lookup — plus the zero-fill used by RLE run
 * reconstruction) feed the prefetch leg, so the decompressor can keep
 * pace with the link the way Section V-B provisions the DPE replicas.
 *
 * Dispatch is decided once at startup: CPUID picks the widest supported
 * backend, and the CDMA_KERNEL_BACKEND environment variable ("scalar",
 * "avx2" or "avx512") overrides it — chiefly to force a narrower path
 * on wide hosts for differential testing and the CI forced-backend job
 * legs; an unsupported or unknown name is fatal and the message lists
 * the backends this host actually supports. Codecs
 * capture the table at construction, so every lane of a
 * ParallelCompressor shares the codec's single dispatch decision.
 *
 * Every backend must produce *byte-identical* codec output: the table
 * changes how the masks and runs are computed, never what is emitted.
 * tests/compress/kernels_test.cc pins this property per op and per codec.
 */

#ifndef CDMA_COMPRESS_KERNELS_KERNELS_HH
#define CDMA_COMPRESS_KERNELS_KERNELS_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace cdma {

/**
 * The primitive hot operations of the codec stack, as a flat function
 * table. All word offsets/counts are in 4-byte (fp32 activation) words.
 */
struct KernelOps {
    /** Backend identifier ("scalar", "avx2", "avx512"). */
    const char *name;

    /**
     * ZVC group op: form the non-zero mask over @p words (1..32)
     * consecutive 32-bit words at @p src and left-pack the non-zero words
     * to @p dst in order (the software mirror of the hardware prefix-sum
     * shift network). Returns the mask; exactly
     * 4 * popcount(mask) payload bytes are live at @p dst.
     *
     * @p dst must have room for 4 * @p words bytes: backends may store
     * full groups unconditionally and let the write pointer lag (the
     * branchless/left-pack trick), so bytes beyond the live payload are
     * scratch.
     */
    uint32_t (*zvcCompactGroup)(const uint8_t *src, uint32_t words,
                                uint8_t *dst);

    /**
     * ZVC expand op — the inverse of zvcCompactGroup: scatter the
     * left-packed non-zero words at @p src back to their mask positions,
     * writing exactly @p words (1..32) 32-bit words at @p dst (zeros
     * where the mask bit is clear). Bits of @p mask at or above
     * @p words must be clear. Returns the payload bytes consumed,
     * always 4 * popcount(mask).
     *
     * @p src is only readable for 4 * popcount(mask) bytes — backends
     * must not over-read past the live payload (the compressed stream
     * ends where the last window's payload ends), while @p dst always
     * has the full 4 * @p words bytes of room.
     */
    uint32_t (*zvcExpandGroup)(const uint8_t *src, uint32_t mask,
                               uint32_t words, uint8_t *dst);

    /**
     * Length of the run of all-zero 32-bit words starting at @p words,
     * capped at @p limit words (limit >= 1).
     */
    uint64_t (*zeroRunWords)(const uint8_t *words, uint64_t limit);

    /**
     * Length of the run of non-zero 32-bit words starting at @p words,
     * capped at @p limit words (limit >= 1).
     */
    uint64_t (*literalRunWords)(const uint8_t *words, uint64_t limit);

    /**
     * Length of the common byte prefix of @p a and @p b, capped at
     * @p max bytes. Both pointers must be readable for @p max bytes
     * (the LZ77 match extension guarantees this by construction).
     */
    size_t (*matchLength)(const uint8_t *a, const uint8_t *b, size_t max);

    /**
     * Bulk byte-sink copy of @p n bytes from @p src to @p dst (used for
     * literal-run and raw-tail emission into the payload sink). Regions
     * must not overlap.
     */
    void (*copyBytes)(uint8_t *dst, const uint8_t *src, size_t n);

    /**
     * Zero-fill of @p n bytes at @p dst — the reconstruction side of a
     * zero run (RLE zero tokens, ZVC all-zero groups): the decompressor
     * spends most of its stores here at the paper's 50-90% sparsity.
     */
    void (*zeroFillBytes)(uint8_t *dst, size_t n);

    /**
     * CRC32C (Castagnoli) over @p n bytes at @p data, continuing from
     * @p seed (pass 0 to start; the pre/post inversion is internal, so
     * chaining crc32(crc32(0, a), b) equals crc32(0, a+b)). This is the
     * end-to-end integrity check framing every spilled shard: computed
     * at compress time, verified on prefetch before expansion. The
     * scalar backend is a slice-by-8 table walk; the AVX2 backend rides
     * the SSE4.2 crc32 instruction (every AVX2 part has it). Both
     * produce the identical standard CRC32C value.
     */
    uint32_t (*crc32)(uint32_t seed, const uint8_t *data, size_t n);
};

/** The portable scalar backend (always available). */
const KernelOps &scalarKernels();

/** The AVX2 backend, or nullptr when this CPU does not support AVX2. */
const KernelOps *avx2Kernels();

/**
 * The AVX-512 backend (vpcompressd/vpexpandd), or nullptr when this CPU
 * lacks AVX512F/BW/VL.
 */
const KernelOps *avx512Kernels();

/**
 * The backend every codec uses by default, selected once at startup:
 * CDMA_KERNEL_BACKEND if set (fatal() on an unknown or unsupported
 * name), otherwise the widest CPUID-supported backend.
 */
const KernelOps &activeKernels();

/**
 * Backend by name ("scalar", "avx2", "avx512"); nullptr if
 * unknown/unsupported.
 */
const KernelOps *kernelsByName(std::string_view name);

/**
 * Every backend this CPU supports, scalar first, widest last (for
 * sweeps/tests; activeKernels() picks back() when unforced).
 */
std::vector<const KernelOps *> supportedKernels();

/**
 * Comma-separated names of every backend this CPU supports (e.g.
 * "scalar, avx2, avx512") — the valid CDMA_KERNEL_BACKEND values, used
 * by the override rejection message.
 */
std::string supportedKernelNames();

/**
 * Resolve a CDMA_KERNEL_BACKEND override value without dying: returns
 * the backend, or nullptr with @p error (when non-null) set to the
 * message activeKernels() would fatal() with — naming the rejected
 * value and listing the backends this host supports. This is the
 * selection logic behind the env override, factored out so tests can
 * cover acceptance and rejection in-process.
 */
const KernelOps *resolveKernelBackendOverride(std::string_view name,
                                              std::string *error = nullptr);

} // namespace cdma

#endif // CDMA_COMPRESS_KERNELS_KERNELS_HH
