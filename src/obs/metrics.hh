/**
 * @file
 * Metrics registry: named counters, gauges, and log-bucketed latency
 * histograms with p50/p95/p99, registered once and updated from
 * anywhere — including worker threads (counters are atomic, histograms
 * mutex-guarded, registration creation-locked). This absorbs the ad-hoc
 * scalar plumbing the integrity and timing layers grew, and is the
 * measurement substrate the CDMA-as-a-service milestone needs.
 *
 * Naming convention: dot-separated hierarchy, unit as the last path
 * component where one applies — e.g. `transfer.offload.shard_latency_seconds`,
 * `kernel.compress.wall_seconds.avx2`, `integrity.crc_failures`.
 */

#ifndef CDMA_OBS_METRICS_HH
#define CDMA_OBS_METRICS_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/stats.hh"

namespace cdma::obs {

/** Monotonically increasing count (events, bytes, retries). */
class Counter
{
  public:
    void add(uint64_t delta = 1)
    {
        value_.fetch_add(delta, std::memory_order_relaxed);
    }
    uint64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<uint64_t> value_{0};
};

/** Last-write-wins instantaneous value (occupancy, ratio). */
class Gauge
{
  public:
    void set(double value)
    {
        value_.store(value, std::memory_order_relaxed);
    }
    double value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<double> value_{0.0};
};

/**
 * Thread-safe wrapper over LogHistogram. Worker lanes record into the
 * same instance; the mutex is uncontended except during parallel
 * compression fan-out, where one lock per shard is noise next to the
 * kernel work it times.
 */
class HistogramMetric
{
  public:
    /** Record one sample (typically seconds). */
    void record(double sample);
    /** Fold another histogram's samples in. */
    void merge(const LogHistogram &other);

    uint64_t count() const;
    double mean() const;
    double min() const;
    double max() const;
    /** Nearest-rank percentile, exact within bucket resolution. */
    double percentile(double q) const;
    /** Copy of the underlying histogram (for export / cross-merge). */
    LogHistogram snapshot() const;

  private:
    mutable std::mutex mu_;
    LogHistogram hist_;
};

/**
 * RAII wall-clock timer recording elapsed seconds into a histogram at
 * destruction. Null target disarms it, so hot paths can hold a maybe-null
 * pointer without branching at the call site.
 */
class ScopedTimer
{
  public:
    explicit ScopedTimer(HistogramMetric *target);
    ~ScopedTimer();

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

  private:
    HistogramMetric *target_;
    uint64_t start_ns_ = 0;
};

/**
 * Registry of named metrics. Lookup creates on first use and returns a
 * stable reference — instruments hold the reference (or pointer) and
 * never touch the registry map again, so updates don't contend on the
 * registry lock.
 */
class MetricsRegistry
{
  public:
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    HistogramMetric &histogram(const std::string &name);

    /**
     * Serialize every metric to a deterministic JSON document:
     * counters/gauges as scalars, histograms as
     * {count, mean, min, max, p50, p95, p99}. Keys sort lexically.
     */
    std::string toJson() const;

    /** Multi-line human-readable summary for harness footers. */
    std::string render() const;

    /** Write toJson() to @p path; fatal() on I/O failure. */
    void writeFileOrDie(const std::string &path) const;

  private:
    mutable std::mutex mu_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<HistogramMetric>> histograms_;
};

} // namespace cdma::obs

#endif // CDMA_OBS_METRICS_HH
