/**
 * @file
 * The compressing DMA engine (cDMA) — the paper's primary contribution
 * (Section V). The engine compresses activation maps on their way from
 * GPU DRAM to the PCIe DMA unit and decompresses on the way back,
 * shrinking the offload/prefetch traffic of virtualized DNN training.
 *
 * Two modeling constraints from the paper are applied to every transfer:
 *
 *  1. Fetch-bandwidth cap (Sections V-B, VI): generating compressed data
 *     at PCIe line rate requires reading compression_ratio x PCIe_BW from
 *     DRAM. The engine may use at most COMP_BW (200 GB/s of the 236 GB/s
 *     left over by compute); layers whose ratio demands more see their
 *     transfer latency inflated by (required / COMP_BW).
 *
 *  2. Store-raw fallback: windows that do not compress are sent raw, so a
 *     transfer never exceeds its uncompressed size.
 *
 * The software interface mirrors the proposed cudaMemcpyCompressed():
 * the plan returns the compressed size of the region along with the
 * modeled transfer time.
 */

#ifndef CDMA_CDMA_ENGINE_HH
#define CDMA_CDMA_ENGINE_HH

#include <algorithm>
#include <memory>
#include <optional>
#include <span>
#include <string>

#include "compress/compressor.hh"
#include "compress/parallel.hh"
#include "gpu/gpu_spec.hh"
#include "sim/channel.hh"
#include "sim/topology.hh"

namespace cdma {

namespace obs {
class MetricsRegistry;
class TraceRecorder;
} // namespace obs

class CodecPolicyEngine;
struct PolicyDecision;

/**
 * How a transfer plan accounts for compression latency.
 *
 * The seed model (CompressionFree) treats compression as instantaneous:
 * plan.seconds is PCIe occupancy with the Section VI fetch-bandwidth
 * inflation folded in as a multiplier. Overlapped replaces that
 * assumption with the double-buffered offload pipeline of Section V-C:
 * the buffer is cut into staging-sized shards, shard k+1 compresses
 * while shard k drains over PCIe, and plan.seconds becomes the pipeline
 * makespan — the fetch cap then *emerges* (a compression stage that
 * cannot feed the link at line rate becomes the pipeline bottleneck)
 * instead of being bolted on.
 */
enum class TimingMode {
    CompressionFree, ///< seed model: compression costs nothing
    Overlapped,      ///< double-buffered compress/transfer pipeline
};

/** Display name of a timing mode. */
std::string timingModeName(TimingMode mode);

/**
 * Bounded-retry policy for faulted shard crossings. A shard whose wire
 * crossing is damaged (CRC mismatch, truncation, link drop — see
 * sim::FaultInjector) is re-sent after an exponential backoff:
 * the k-th retry waits backoff_seconds * 2^(k-1). After
 * raw_fallback_after failed crossings the shard degrades to raw
 * framing (uncompressed payload, no decode step on the far side), the
 * robustness analogue of the paper's store-raw fallback. A shard that
 * fails max_attempts crossings surfaces Status::retryExhausted.
 */
struct RetryPolicy {
    /** Total crossings allowed per shard (first try + retries). */
    uint32_t max_attempts = 4;
    /** Backoff before the first retry; doubles each further retry. */
    double backoff_seconds = 2e-6;
    /** Failed crossings before the shard degrades to raw framing. */
    uint32_t raw_fallback_after = 2;
};

/**
 * Integrity and retry accounting of one transfer (or one accumulated
 * schedule step). attempts counts wire crossings, so attempts ==
 * shard_count on a fault-free transfer; every counter beyond that is
 * zero unless a fault injector is configured.
 */
struct TransferIntegrity {
    uint64_t attempts = 0;      ///< wire crossings (first tries + retries)
    uint64_t retries = 0;       ///< crossings repeated after a fault
    uint64_t crc_failures = 0;  ///< crossings rejected by the CRC check
    uint64_t link_faults = 0;   ///< crossings lost or truncated in flight
    uint64_t degraded_shards = 0; ///< shards downgraded to raw framing
    uint64_t failed_wire_bytes = 0; ///< wire bytes of failed crossings
    /** Modeled seconds lost to re-sent bytes and retry backoff. */
    double retry_stall_seconds = 0.0;

    /** Fold another transfer's accounting into this one. */
    void accumulate(const TransferIntegrity &other)
    {
        attempts += other.attempts;
        retries += other.retries;
        crc_failures += other.crc_failures;
        link_faults += other.link_faults;
        degraded_shards += other.degraded_shards;
        failed_wire_bytes += other.failed_wire_bytes;
        retry_stall_seconds += other.retry_stall_seconds;
    }
};

/**
 * Timing of one offloaded buffer under the double-buffered pipeline
 * model. All times are modeled seconds (compression fetches raw bytes at
 * COMP_BW; the wire drains store-raw-floored bytes at effective PCIe
 * bandwidth).
 */
struct OffloadTiming {
    double compress_seconds = 0.0; ///< sum of per-shard compression times
    double wire_seconds = 0.0;     ///< sum of per-shard wire times
    /**
     * Portion of wire_seconds spent re-sending faulted crossings plus
     * their exponential backoff (zero without a fault injector). The
     * retry sequence holds the shard's DMA transaction slot, so the
     * stall is priced inside the shard's wire leg on the DES timeline.
     */
    double retry_stall_seconds = 0.0;
    /** Pipeline makespan: first byte fetched to last byte on the wire. */
    double overlapped_seconds = 0.0;
    /** Fraction of the hideable (shorter) leg actually hidden, in [0,1]. */
    double overlap_fraction = 0.0;
    uint64_t shard_count = 0; ///< staging shards the buffer was cut into

    /** What the same transfer costs with no overlap at all. */
    double serializedSeconds() const
    {
        return compress_seconds + wire_seconds;
    }

    /** Latency hidden by the pipeline relative to serialization. */
    double hiddenSeconds() const
    {
        return serializedSeconds() - overlapped_seconds;
    }
};

/**
 * Timing of one prefetched buffer under the double-buffered pipeline
 * model — the mirror image of OffloadTiming for the backward direction:
 * compressed shards cross PCIe at effective wire bandwidth while the
 * decompression engine re-inflates the previously landed shard, writing
 * raw bytes back to DRAM at COMP_BW (the paper provisions the DPE
 * replicas symmetrically, Section V-B).
 */
struct PrefetchTiming {
    double wire_seconds = 0.0;       ///< sum of per-shard wire times
    double decompress_seconds = 0.0; ///< sum of per-shard expand times
    /** Re-sent-crossing service plus backoff inside wire_seconds (zero
     *  without a fault injector); see OffloadTiming. */
    double retry_stall_seconds = 0.0;
    /** Pipeline makespan: first wire byte to last byte re-inflated. */
    double overlapped_seconds = 0.0;
    /** Fraction of the hideable (shorter) leg actually hidden, in [0,1]. */
    double overlap_fraction = 0.0;
    uint64_t shard_count = 0; ///< staging shards the buffer arrives in

    /** What the same prefetch costs with no overlap at all. */
    double serializedSeconds() const
    {
        return wire_seconds + decompress_seconds;
    }

    /** Latency hidden by the pipeline relative to serialization. */
    double hiddenSeconds() const
    {
        return serializedSeconds() - overlapped_seconds;
    }
};

/**
 * Finalize @p timing's overlap fraction in [0,1]: the share of the
 * hideable (shorter) leg actually hidden. One shared rule — the 1e-9
 * pins between the schedulers' closed forms and the duplex DES depend
 * on every model finalizing identically.
 */
inline void
finalizeOverlapFraction(OffloadTiming &timing)
{
    const double hideable =
        std::min(timing.compress_seconds, timing.wire_seconds);
    timing.overlap_fraction = hideable > 0.0
        ? std::clamp(timing.hiddenSeconds() / hideable, 0.0, 1.0)
        : 0.0;
}

/** Prefetch-leg mirror of finalizeOverlapFraction(OffloadTiming&). */
inline void
finalizeOverlapFraction(PrefetchTiming &timing)
{
    const double hideable =
        std::min(timing.wire_seconds, timing.decompress_seconds);
    timing.overlap_fraction = hideable > 0.0
        ? std::clamp(timing.hiddenSeconds() / hideable, 0.0, 1.0)
        : 0.0;
}

/**
 * Timing of one full-duplex transfer step: an offload shard train and a
 * prefetch shard train racing on the same PCIe link (the Figure 2(b)
 * overlap of layer n+1's offload with layer n-1's prefetch). The
 * per-direction breakdowns keep their single-direction shapes; the
 * contention fields record how long each direction's wire transfers
 * waited while the link served the opposing direction (nonzero only
 * under DuplexMode::Half, where both directions share one link).
 */
struct DuplexTiming {
    /** Offload leg (compress, then wire out) on the contended link. */
    OffloadTiming offload;
    /** Prefetch leg (wire in, then decompress) on the contended link. */
    PrefetchTiming prefetch;
    /** Both directions drained: max of the per-direction makespans. */
    double makespan_seconds = 0.0;
    /** Offload wire waits caused by prefetch occupancy of the link. */
    double offload_contention_seconds = 0.0;
    /** Prefetch wire waits caused by offload occupancy of the link. */
    double prefetch_contention_seconds = 0.0;

    /** Total cross-direction wire wait. */
    double contentionSeconds() const
    {
        return offload_contention_seconds + prefetch_contention_seconds;
    }

    /** Fraction of the duplex makespan lost to contention, in [0,1]. */
    double contentionStallFraction() const
    {
        return makespan_seconds > 0.0
            ? std::min(1.0, contentionSeconds() / makespan_seconds)
            : 0.0;
    }
};

/**
 * How the engine picks the codec for each transfer. Fixed (the
 * historical behavior) always uses CompressionConfig::algorithm.
 * Adaptive consults CompressionConfig::policy per transfer: the
 * CodecPolicyEngine prices ZVC/RLE/ZL/raw from the layer's observed
 * density and the wire, and the engine compresses with whatever won —
 * per-shard codec tags make the decode side follow along.
 */
enum class CodecMode {
    Fixed,    ///< always CompressionConfig::algorithm
    Adaptive, ///< per-transfer cost-model choice via the policy engine
};

/** Display name of a codec mode ("fixed", "adaptive"). */
std::string codecModeName(CodecMode mode);

/** Codec configuration of the cDMA engine. */
struct CompressionConfig {
    Algorithm algorithm = Algorithm::Zvc;
    uint64_t window_bytes = 4096;
    /** When false the engine degrades to a plain (vDNN) DMA copy. */
    bool enabled = true;
    /**
     * Software compression lanes used when the engine compresses real
     * bytes (planTransfer), mirroring the hardware's replicated ZVC
     * pipelines. 1 = serial; 0 = one lane per hardware thread.
     */
    unsigned lanes = 1;
    /**
     * Kernel backend for the codec's primitive hot ops (mask/compact,
     * run scans). nullptr = the process-wide runtime dispatch
     * (activeKernels(): CPUID with the CDMA_KERNEL_BACKEND override).
     * The engine's compression lanes all share this one decision.
     */
    const KernelOps *kernels = nullptr;
    /** Fixed codec (algorithm above) or per-transfer adaptive choice. */
    CodecMode mode = CodecMode::Fixed;
    /**
     * The adaptive policy engine (non-owning; the caller keeps it alive
     * for the engine's lifetime — it holds the per-layer density/
     * hysteresis state, so sharing one across engines shares that
     * state). Required when mode == Adaptive; ignored under Fixed.
     */
    CodecPolicyEngine *policy = nullptr;
};

/** Transfer-pipeline configuration of the cDMA engine. */
struct TransferConfig {
    /** Compression-latency model for planned transfers. */
    TimingMode timing_mode = TimingMode::CompressionFree;
    /**
     * Staging-shard size of the offload pipeline, rounded down to whole
     * compression windows. 0 derives it from the paper's bandwidth-delay
     * DMA buffer (GpuSpec::dmaBufferBytes(), 70 KB at 200 GB/s x 350 ns).
     */
    uint64_t shard_bytes = 0;
    /** Staging buffers in flight; 2 = classic double buffering. */
    unsigned staging_buffers = 2;
    /**
     * How the offload and prefetch directions share the PCIe link.
     * Full (the default, PCIe's nominal operating point) gives each
     * direction the effective bandwidth independently — the historical
     * behavior where the two pipelines never contended. Half serializes
     * both directions on one shared link, so an offload shard train and
     * a prefetch shard train in flight together slow each other down.
     */
    DuplexMode duplex_mode = DuplexMode::Full;
    /** Which pending direction a contended link serves next. */
    LinkArbiter link_arbiter = LinkArbiter::RoundRobin;
    /**
     * GPU-memory budget for the step simulator's boundary prefetch
     * lookahead, in bytes. At the forward/backward boundary the head
     * prefetch is parked behind its own draining offload; rather than
     * idle the inbound link, the simulator issues further prefetches in
     * backward order. With a budget set, it issues as many as fit —
     * every map vDNN freed during forward can land back as soon as the
     * link allows, so the natural setting is the freed working set
     * (MemoryFootprint::freedBytes()). 0 means the capacity is not
     * modeled: the simulator falls back to the fixed staging_buffers-1
     * lookahead (the pre-capacity behavior, pinned by tests as the
     * degenerate case).
     */
    uint64_t prefetch_lookahead_bytes = 0;
    /**
     * Optional link fault process (non-owning; the caller keeps the
     * injector alive for the engine's lifetime). When set, the arena
     * transfer flows sample per-crossing damage from it — detected by
     * the CRC-32C shard framing and repaired by RetryPolicy — and the
     * buffer flows and analytic models price the same process in
     * expectation. nullptr = a perfect link (the historical behavior).
     * Applied to every edge of the configured topology.
     */
    sim::FaultInjector *fault_injector = nullptr;
    /** Retry/backoff/degradation policy for faulted crossings. */
    RetryPolicy retry;
};

/**
 * Interconnect the engine's wire legs ride on. By default (null graph)
 * the engine models the historical two-endpoint PCIe link, built from
 * GpuSpec::pcie_effective_bandwidth and the TransferConfig duplex
 * mode/arbiter — the degenerate two-node graph, so every transfer
 * already goes through the topology path. A configured graph routes the
 * wire legs from gpu_node to host_node across whatever switches sit
 * between them (per-edge bandwidth/duplex/arbiter from the graph).
 */
struct TopologyConfig {
    /** Interconnect graph; nullptr = two-node GPU—host PCIe link. */
    std::shared_ptr<const Topology> graph;
    /** This engine's GPU endpoint in the graph. */
    NodeId gpu_node = 0;
    /** The host-DRAM endpoint transfers terminate at. */
    NodeId host_node = 1;
    /** Source tag wire legs carry on shared edges (the GPU's index in
     *  a fleet; single-GPU configurations leave it at 0). */
    unsigned source = 0;
};

/**
 * Observability hooks of the cDMA engine. Only the metrics registry
 * rides here: histograms record durations, which are origin-agnostic,
 * so they aggregate correctly across the many independent t=0 event
 * queues the engine's planning paths spin up. A TraceRecorder needs one
 * coherent timeline and therefore attaches at the simulator level
 * instead (FleetSpec::trace, StepSimulator::setTrace).
 */
struct ObsConfig {
    /** Metrics sink (non-owning; nullptr = no metrics recorded). */
    obs::MetricsRegistry *metrics = nullptr;
    /**
     * Instant sink for sampled integrity events — CRC failures, link
     * faults, raw-framing degradations — on the arena transfer flows
     * (non-owning; nullptr = off). These flows run outside any DES
     * timeline, so the instants ride the recorder's monotonic
     * pseudo-clock on the "integrity" process; never attach a recorder
     * that also carries DES timelines.
     */
    obs::TraceRecorder *integrity_trace = nullptr;
};

/** Configuration of the cDMA engine. */
struct CdmaConfig {
    GpuSpec gpu;
    /** Codec: algorithm, window size, lanes, kernel backend. */
    CompressionConfig compression;
    /** Pipelines: timing mode, staging, duplex link, fault handling. */
    TransferConfig transfer;
    /** Interconnect the wire legs traverse. */
    TopologyConfig topology;
    /** Metrics hooks (trace recorders attach at the simulator level). */
    ObsConfig obs;
};

/**
 * Fold one transfer's integrity accounting into @p metrics as
 * `integrity.*` counters plus the `integrity.retry_stall_seconds`
 * histogram — the registry-backed replacement for hand-summed
 * TransferIntegrity scalars in harness code.
 */
void recordIntegrity(obs::MetricsRegistry &metrics,
                     const TransferIntegrity &integrity);

/**
 * The pre-topology flat configuration layout, kept for one release so
 * existing initializer-heavy call sites keep compiling while they
 * migrate to the nested CdmaConfig sub-structs. Converts implicitly.
 */
struct [[deprecated("use CdmaConfig's nested sub-structs")]]
FlatCdmaConfig {
    GpuSpec gpu;
    Algorithm algorithm = Algorithm::Zvc;
    uint64_t window_bytes = 4096;
    bool compression_enabled = true;
    unsigned compression_lanes = 1;
    TimingMode timing_mode = TimingMode::CompressionFree;
    uint64_t shard_bytes = 0;
    unsigned staging_buffers = 2;
    const KernelOps *kernels = nullptr;
    DuplexMode duplex_mode = DuplexMode::Full;
    LinkArbiter link_arbiter = LinkArbiter::RoundRobin;
    sim::FaultInjector *fault_injector = nullptr;
    RetryPolicy retry;

    operator CdmaConfig() const
    {
        CdmaConfig config;
        config.gpu = gpu;
        config.compression.algorithm = algorithm;
        config.compression.window_bytes = window_bytes;
        config.compression.enabled = compression_enabled;
        config.compression.lanes = compression_lanes;
        config.compression.kernels = kernels;
        config.transfer.timing_mode = timing_mode;
        config.transfer.shard_bytes = shard_bytes;
        config.transfer.staging_buffers = staging_buffers;
        config.transfer.duplex_mode = duplex_mode;
        config.transfer.link_arbiter = link_arbiter;
        config.transfer.fault_injector = fault_injector;
        config.transfer.retry = retry;
        return config;
    }
};

/** Outcome of planning one activation-map transfer. */
struct TransferPlan {
    std::string label;
    uint64_t raw_bytes = 0;   ///< uncompressed activation size
    uint64_t wire_bytes = 0;  ///< bytes actually crossing PCIe
    double ratio = 1.0;       ///< raw / wire
    /**
     * Modeled offload latency. CompressionFree: PCIe occupancy including
     * the cap penalty. Overlapped: the pipeline makespan
     * (offload.overlapped_seconds).
     */
    double seconds = 0.0;
    double required_fetch_bandwidth = 0.0; ///< ratio x PCIe bandwidth
    bool fetch_capped = false; ///< true when COMP_BW limited the transfer
    /** Pipeline breakdown; all zeros under TimingMode::CompressionFree. */
    OffloadTiming offload;
    /**
     * Prefetch-leg pipeline breakdown for restoring this map during
     * backward propagation (wire in, then decompress); all zeros under
     * TimingMode::CompressionFree, where the seed model prices both
     * directions identically at plan.seconds.
     */
    PrefetchTiming prefetch;
    /**
     * Full-duplex race of this map's offload against an equal-size
     * prefetch on the configured link (CdmaConfig::duplex_mode /
     * link_arbiter): the per-direction makespans and the contention
     * stall each direction pays when both share one half-duplex link.
     * All zeros under TimingMode::CompressionFree. Under
     * DuplexMode::Full, duplex.offload/duplex.prefetch coincide with
     * the single-direction breakdowns above.
     */
    DuplexTiming duplex;
    /**
     * Expected integrity accounting for the offload + prefetch round
     * trip under CdmaConfig::fault_injector (all zeros without one, and
     * under TimingMode::CompressionFree, which has no shard pipeline to
     * price retries on).
     */
    TransferIntegrity integrity;
    /**
     * Codec that framed (or will frame) this transfer. Under
     * CodecMode::Fixed this is the configured algorithm's codec; under
     * Adaptive it is whatever the policy chose for this layer this
     * iteration.
     */
    Codec codec = Codec::Zvc;
    /**
     * The policy's modeled compress + wire seconds for the chosen
     * codec (CodecPolicyEngine closed form, uncontended besides the
     * configured policy wire bandwidth). Zero when the plan did not go
     * through the adaptive path. Consumers compare this against the
     * engine's own (DES / pipeline) pricing to report
     * predicted-vs-actual cost error.
     */
    double policy_predicted_seconds = 0.0;
};

/** The compressing DMA engine model. */
class CdmaEngine
{
  public:
    explicit CdmaEngine(const CdmaConfig &config);

    /** Engine configuration. */
    const CdmaConfig &config() const { return config_; }

    /** The (possibly parallel) compressor backing planTransfer(). */
    const ParallelCompressor &compressor() const { return *compressor_; }

    /**
     * The compressor for @p codec: the fixed compressor when the tag
     * matches (or when no codec bank exists — CodecMode::Fixed keeps
     * the historical single-codec behavior regardless of tag), else the
     * adaptive bank's compressor for that codec. The bank is built
     * under CodecMode::Adaptive, one ParallelCompressor per codec the
     * policy can choose, all sharing the engine's window/lanes/kernels.
     */
    const ParallelCompressor &compressorFor(Codec codec) const;

    /**
     * Serial decoder for @p codec (same window and kernel backend as
     * the engine's compressor). Always available, every codec: the
     * prefetch side dispatches per *stored shard* tag, which under the
     * adaptive policy can differ shard to shard within one spill.
     */
    const Compressor &serialCodec(Codec codec) const;

    /** The adaptive policy engine (nullptr under CodecMode::Fixed). */
    CodecPolicyEngine *policy() const { return config_.compression.policy; }

    /** Kernel backend name the engine compresses with. */
    const char *backendName() const { return compressor_->backendName(); }

    /**
     * Plan a transfer by compressing the actual bytes (the
     * cudaMemcpyCompressed() path).
     */
    TransferPlan planTransfer(const std::string &label,
                              std::span<const uint8_t> data) const;

    /**
     * Plan a transfer from a known raw size and compression ratio (the
     * analytic path used by the full-size network experiments, where the
     * ratio was measured on generated activation data).
     */
    TransferPlan planFromRatio(const std::string &label,
                               uint64_t raw_bytes, double ratio) const;

    /**
     * Plan a transfer from a known raw size and activation density (the
     * analytic path of the adaptive codec policy: no activation bytes
     * exist, so the policy prices codecs at @p density, its decision's
     * modeled ratio feeds planFromRatio, and the plan carries the
     * chosen codec + the policy's predicted cost). Requires
     * CodecMode::Adaptive with a configured policy; with compression
     * disabled it degrades to the raw plan like every other path.
     */
    TransferPlan planFromDensity(const std::string &label,
                                 uint64_t raw_bytes, double density) const;

    /**
     * PCIe occupancy of a transfer of @p wire_bytes compressed at
     * @p ratio, including the fetch-bandwidth inflation of Section VI.
     */
    double transferSeconds(uint64_t wire_bytes, double ratio) const;

    /**
     * The compression ratio above which the COMP_BW cap binds
     * (200 / 16 = 12.5x with default provisioning).
     */
    double capRatio() const;

  private:
    CdmaConfig config_;
    std::unique_ptr<ParallelCompressor> compressor_;
    /** Serial decoder per codec, indexed by static_cast<size_t>(Codec);
     *  always populated (cheap, stateless objects). */
    std::vector<std::unique_ptr<Compressor>> serial_codecs_;
    /** Adaptive compressor bank, same indexing; entries only under
     *  CodecMode::Adaptive (the slot matching the fixed algorithm stays
     *  empty — compressorFor() routes it to compressor_). */
    std::vector<std::unique_ptr<ParallelCompressor>> codec_bank_;
};

} // namespace cdma

#endif // CDMA_CDMA_ENGINE_HH
