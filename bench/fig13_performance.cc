/**
 * @file
 * Figure 13 reproduction: end-to-end training-iteration performance of
 * vDNN and cDMA (with RL / ZV / ZL compression), normalized to the
 * oracle that always hides transfers, under cuDNN v5. Per-layer
 * compression ratios come from synthetic trained-model activations
 * (NCHW, the paper's reporting layout).
 *
 * Expected shape (paper): cDMA-ZV recovers most of the oracle gap — an
 * average 32% (max 61%) speedup over vDNN — and ZL buys <1% over ZV
 * despite its higher ratios.
 *
 * The ZV-ovl column re-runs cDMA-ZV with TimingMode::Overlapped (the
 * Section V-C double-buffered pipeline pricing compression explicitly
 * in BOTH directions: compress/wire-out on the forward pass and the
 * mirrored wire-in/decompress prefetch pipeline on the backward pass);
 * the footer reports the delta against the seed's compression-free
 * numbers — the honest cost of the assumption the paper's model makes —
 * plus the per-layer prefetch overlap backprop sees.
 */

#include <cstdio>
#include <string>

#include "common/harness.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "perf/step_sim.hh"

using namespace cdma;
using bench::Table;

int
main(int argc, char **argv)
{
    const std::string trace_out =
        obs::extractFlag(argc, argv, "trace-out");
    const std::string metrics_out =
        obs::extractFlag(argc, argv, "metrics-out");
    obs::TraceRecorder trace;
    obs::TraceRecorder *trace_ptr =
        trace_out.empty() ? nullptr : &trace;

    std::printf("== Figure 13: performance normalized to oracle "
                "(higher is better, cuDNN v5) ==\n");
    Table table({"network", "vDNN", "cDMA-RL", "cDMA-ZV", "ZV-ovl",
                 "cDMA-ZL", "oracle"});

    PerfModel perf;
    // All footer aggregates live in the registry: the printed numbers
    // and the --metrics-out export come from the same accumulation.
    obs::MetricsRegistry metrics;
    obs::HistogramMetric &zv_speedup =
        metrics.histogram("fig13.zv_speedup_over_vdnn");
    obs::HistogramMetric &zl_over_zv =
        metrics.histogram("fig13.zl_speedup_over_zv");
    obs::HistogramMetric &zv_overlap_speedup =
        metrics.histogram("fig13.zv_overlapped_speedup_over_vdnn");
    obs::HistogramMetric &overlap_cost =
        metrics.histogram("fig13.overlap_cost_ratio");
    obs::HistogramMetric &offload_overlap =
        metrics.histogram("fig13.offload_overlap_fraction");
    obs::HistogramMetric &prefetch_overlap =
        metrics.histogram("fig13.prefetch_overlap_fraction");
    obs::HistogramMetric &duplex_contention =
        metrics.histogram("fig13.halfduplex_contention_stall_fraction");
    double best_speedup = 0.0;
    std::string best_net;
    double worst_contention = 0.0;
    std::string worst_contention_net;

    for (const auto &net : allNetworkDescs()) {
        VdnnMemoryManager manager(net, net.default_batch);
        CdmaEngine engine(CdmaConfig{});
        StepSimulator sim(manager, engine, perf, CudnnVersion::V5);

        // Same engine with the compression leg priced explicitly: the
        // Section V-C double-buffered pipeline instead of the seed's
        // compression-free assumption ("ZV-ovl" column).
        CdmaConfig overlapped_config;
        overlapped_config.transfer.timing_mode = TimingMode::Overlapped;
        CdmaEngine overlapped_engine(overlapped_config);
        StepSimulator overlapped_sim(manager, overlapped_engine, perf,
                                     CudnnVersion::V5);
        // Trace only the ZV-overlapped run (the one with an explicit
        // compress/wire pipeline), one process per network. Each run's
        // timeline starts at t = 0; distinct process names keep the
        // per-network tracks separate in the viewer.
        overlapped_sim.setTrace(trace_ptr, net.name + ".zv-ovl");

        const StepResult oracle = sim.run(StepMode::Oracle);
        const StepResult vdnn = sim.run(StepMode::Vdnn);

        std::vector<std::string> row = {net.name};
        row.push_back(
            Table::num(oracle.total_seconds / vdnn.total_seconds, 3));

        double zv_time = 0.0, zl_time = 0.0;
        for (Algorithm algorithm : kAllAlgorithms) {
            const auto measured = bench::measureTimeAveragedRatios(
                net, algorithm, Layout::NCHW);
            std::vector<double> ratios;
            ratios.reserve(measured.layers.size());
            for (const auto &layer : measured.layers)
                ratios.push_back(layer.ratio);
            const StepResult cdma =
                sim.run(StepMode::Cdma, ratios);
            row.push_back(Table::num(
                oracle.total_seconds / cdma.total_seconds, 3));
            if (algorithm == Algorithm::Zvc) {
                zv_time = cdma.total_seconds;
                const double speedup = cdma.speedupOver(vdnn);
                zv_speedup.record(speedup);
                if (speedup > best_speedup) {
                    best_speedup = speedup;
                    best_net = net.name;
                }
                const StepResult cdma_ovl =
                    overlapped_sim.run(StepMode::Cdma, ratios);
                row.push_back(Table::num(
                    oracle.total_seconds / cdma_ovl.total_seconds, 3));
                zv_overlap_speedup.record(cdma_ovl.speedupOver(vdnn));
                overlap_cost.record(cdma_ovl.total_seconds /
                                 cdma.total_seconds);
                // Per-layer overlap of both pipeline directions, as
                // the simulated iteration actually priced them.
                for (const auto &layer : cdma_ovl.layers) {
                    if (layer.offload.shard_count > 0)
                        offload_overlap.record(
                            layer.offload.overlap_fraction);
                    if (layer.prefetch.shard_count > 0)
                        prefetch_overlap.record(
                            layer.prefetch.overlap_fraction);
                }
                // The same iteration with both directions sharing one
                // half-duplex link: the boundary race (the tail
                // offload still draining out vs the lookahead
                // prefetches coming back) shows up as contention.
                CdmaConfig half_config;
                half_config.transfer.duplex_mode = DuplexMode::Half;
                CdmaEngine half_engine(half_config);
                StepSimulator half_sim(manager, half_engine, perf,
                                       CudnnVersion::V5);
                const StepResult cdma_half =
                    half_sim.run(StepMode::Cdma, ratios);
                duplex_contention.record(
                    cdma_half.contentionStallFraction());
                if (cdma_half.contentionStallFraction() >
                    worst_contention) {
                    worst_contention =
                        cdma_half.contentionStallFraction();
                    worst_contention_net = net.name;
                }
            }
            if (algorithm == Algorithm::Zlib)
                zl_time = cdma.total_seconds;
        }
        zl_over_zv.record(zv_time / zl_time);
        row.push_back("1.000");
        table.addRow(row);
    }
    table.print();
    std::printf("\ncDMA-ZV speedup over vDNN: average %.0f%% "
                "(paper: ~32%%), max %.0f%% on %s (paper: ~61%%)\n",
                100.0 * (zv_speedup.mean() - 1.0),
                100.0 * (best_speedup - 1.0), best_net.c_str());
    std::printf("cDMA-ZL speedup over cDMA-ZV: average %.1f%% "
                "(paper: ~0.7%%)\n",
                100.0 * (zl_over_zv.mean() - 1.0));
    std::printf("with explicit compression latency (ZV-ovl, "
                "TimingMode::Overlapped): average speedup %.0f%% over "
                "vDNN; iteration %.2f%% slower than the "
                "compression-free model\n",
                100.0 * (zv_overlap_speedup.mean() - 1.0),
                100.0 * (overlap_cost.mean() - 1.0));
    std::printf("per-layer pipeline overlap under ZV-ovl: offload "
                "(compress under wire-out) %.1f%% average, prefetch "
                "(wire-in under decompress) %.1f%% average across all "
                "offloaded layers\n",
                100.0 * offload_overlap.mean(),
                100.0 * prefetch_overlap.mean());
    std::printf("half-duplex link (offload and prefetch sharing one "
                "arbitrated channel): contention stall fraction "
                "%.3f%% average, %.3f%% worst (%s) — the boundary race "
                "of the tail offload against the lookahead prefetches; "
                "full duplex never contends\n",
                100.0 * duplex_contention.mean(),
                100.0 * worst_contention,
                worst_contention_net.empty()
                    ? "-"
                    : worst_contention_net.c_str());
    if (!trace_out.empty()) {
        trace.writeFileOrDie(trace_out);
        std::printf("wrote trace: %s (%zu events)\n", trace_out.c_str(),
                    trace.eventCount());
    }
    if (!metrics_out.empty()) {
        metrics.writeFileOrDie(metrics_out);
        std::printf("wrote metrics: %s\n", metrics_out.c_str());
    }
    return 0;
}
