/**
 * @file
 * Adaptive per-layer codec policy. The paper (Figs. 4-7) shows
 * activation density varying wildly across layers and over training:
 * dense early conv layers compress poorly (a ZVC ratio near 1.0) while
 * deep ReLU layers approach 90%+ zeros. A static codec knob therefore
 * leaves time on the table both ways — dense layers pay a compression
 * pass that loses to the wire, sparse layers shipped raw waste link
 * bandwidth. The CodecPolicyEngine closes the loop per layer per
 * iteration:
 *
 *  - an online density estimator: a cheap strided zero-word sample of
 *    the activation buffer (a few KB read regardless of layer size),
 *    smoothed across iterations with an EWMA so one odd batch doesn't
 *    yank the choice around;
 *
 *  - a closed-form cost model pricing each candidate codec as
 *    compress_time(raw_bytes) + wire_time(raw_bytes / ratio) against
 *    the raw baseline wire_time(raw_bytes), using per-codec
 *    throughput/ratio curves over density. The curves are seeded from
 *    the committed BENCH_kernel_throughput.json trajectory and can be
 *    re-pointed at a fresh bench run (loadBenchJson) or updated online
 *    from measured compress wall-clock (observe);
 *
 *  - hysteresis: the active codec only changes when a challenger's
 *    predicted win exceeds a configurable margin for K consecutive
 *    decisions, so the choice doesn't flap at density boundaries where
 *    two codecs price within noise of each other.
 *
 * The decision is a Codec (ZVC / RLE / ZL / raw); the transfer path is
 * codec-agnostic per shard, so mixed-codec spill trains decode
 * correctly whatever sequence of choices produced them.
 */

#ifndef CDMA_COMPRESS_POLICY_HH
#define CDMA_COMPRESS_POLICY_HH

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "compress/compressor.hh"

namespace cdma {

namespace obs {
class MetricsRegistry;
class TraceRecorder;
} // namespace obs

/** Tuning knobs of the adaptive codec policy. */
struct PolicyConfig {
    /**
     * Wire bandwidth the cost model prices transfers at, in bytes/s.
     * This should be the bandwidth a transfer actually sees — under
     * half-duplex contention with prefetch that is roughly half the
     * link's effective rate — not the nameplate number: compression
     * only pays when the wire is the bottleneck, so pricing against an
     * uncontended wire makes raw look better than it performs.
     */
    double wire_bandwidth = 12.8e9;
    /**
     * Minimum predicted relative win (1 - best_cost / active_cost) a
     * challenger codec must sustain before a switch. The margin test is
     * inclusive: a win exactly at the margin qualifies.
     */
    double switch_margin = 0.10;
    /**
     * Consecutive qualifying decisions required before the switch
     * fires (fires ON the K-th). 1 = switch immediately.
     */
    uint32_t hysteresis_iterations = 3;
    /** EWMA weight of the newest density sample (1.0 = no smoothing). */
    double ewma_alpha = 0.5;
    /** Window granularity of the density sampler. */
    uint64_t window_bytes = Compressor::kDefaultWindowBytes;
    /** At most this many windows are sampled, evenly strided. */
    uint32_t max_sample_windows = 32;
    /** 4-byte words sampled per sampled window, evenly strided. */
    uint32_t sample_words_per_window = 32;
    /** Allow the DEFLATE upper bound as a candidate (its software
     *  throughput is ~3 orders below ZVC, so the cost model all but
     *  never picks it; disable to skip pricing it at all). */
    bool allow_zlib = true;
    /** Decision/switch counters + predicted-error histogram land here
     *  (non-owning; nullptr disables). */
    obs::MetricsRegistry *metrics = nullptr;
    /** Chosen-codec instants land on the ("policy", "decisions") track
     *  (non-owning; nullptr disables). Rides the recorder's pseudo-
     *  clock — attach only to recorders without real DES timelines. */
    obs::TraceRecorder *trace = nullptr;
};

/** One per-layer, per-iteration policy decision. */
struct PolicyDecision {
    /** The codec to compress with (the post-hysteresis active codec). */
    Codec codec = Codec::Zvc;
    /** Smoothed (EWMA) density the decision priced. */
    double density = 1.0;
    /** This iteration's raw density sample (== density on the first). */
    double sampled_density = 1.0;
    /** Modeled compression ratio of the chosen codec at density. */
    double predicted_ratio = 1.0;
    /** Modeled compress + wire seconds of the chosen codec. */
    double predicted_seconds = 0.0;
    /** Modeled wire seconds of shipping the layer raw (baseline). */
    double raw_seconds = 0.0;
    /** This decision switched the active codec. */
    bool switched = false;
};

/**
 * Cost-model-driven per-layer codec selector with online density
 * tracking and hysteresis. Not thread-safe (the offload schedule is
 * serial per engine); one engine instance serves any number of layers,
 * keyed by label.
 */
class CodecPolicyEngine
{
  public:
    explicit CodecPolicyEngine(PolicyConfig config = {});

    const PolicyConfig &config() const { return config_; }

    /**
     * Estimate the zero-word density of @p data and decide the codec
     * for layer @p label. Reads at most max_sample_windows *
     * sample_words_per_window words regardless of buffer size.
     */
    PolicyDecision decide(const std::string &label,
                          std::span<const uint8_t> data);

    /**
     * Decide from an externally known density (the modeled flows, where
     * no activation bytes exist). @p density is the nonzero fraction.
     */
    PolicyDecision decideFromDensity(const std::string &label,
                                     uint64_t raw_bytes, double density);

    /**
     * Feed back what actually happened: the achieved ratio (and, when
     * measured, the real compress wall-clock) of the transfer the
     * decision drove. Records the relative cost-prediction error into
     * the `policy.predicted_error` histogram, and refines the
     * throughput curve at the decision's density from the measured
     * wall-clock. Pass actual_compress_seconds <= 0 when unmeasured.
     */
    void observe(const std::string &label, const PolicyDecision &decision,
                 uint64_t raw_bytes, double actual_ratio,
                 double actual_compress_seconds = 0.0);

    /** Nonzero 4-byte-word fraction of @p data, strided sample. */
    double sampleDensity(std::span<const uint8_t> data) const;

    /**
     * Modeled compress throughput of @p codec at @p density, bytes/s
     * of raw input. Codec::Raw is infinite (no compression pass).
     */
    double compressThroughput(Codec codec, double density) const;

    /** Modeled store-raw-floored compression ratio at @p density. */
    double predictedRatio(Codec codec, double density) const;

    /** Modeled compress + wire seconds of one transfer. */
    double predictedSeconds(Codec codec, uint64_t raw_bytes,
                            double density) const;

    /**
     * Replace @p codec's cost curve point at @p density (inserting it
     * if absent) — the seam tests and the online refinement use.
     * @p ratio <= 0 keeps the existing modeled ratio.
     */
    void setCostPoint(Codec codec, double density, double bytes_per_second,
                      double ratio);

    /**
     * Re-seed the throughput/ratio curves from a bench JSON produced by
     * bench/kernel_throughput (the BM_{Zvc,Rle,Deflate}Compress/<d>
     * dispatch rows). Returns false (leaving the compiled-in seed
     * curves untouched) when the file is unreadable or contains no
     * usable rows.
     */
    bool loadBenchJson(const std::string &path);

    /** Codec switches across all layers since construction. */
    uint64_t switches() const { return switches_; }

    /** Decisions across all layers since construction. */
    uint64_t decisions() const { return decisions_; }

    /** Forget all per-layer state (curves are kept). */
    void reset();

  private:
    /** One measured/modelled point of a codec's cost curve. */
    struct CostPoint {
        double density;
        double bytes_per_second;
        double ratio;
    };

    /** Per-layer hysteresis state. */
    struct LayerState {
        bool initialized = false;
        double ewma_density = 1.0;
        Codec active = Codec::Zvc;
        Codec challenger = Codec::Zvc;
        uint32_t streak = 0;
    };

    const std::vector<CostPoint> &curve(Codec codec) const;
    std::vector<CostPoint> &curve(Codec codec);
    void emitDecisionTrace(const std::string &label,
                           const PolicyDecision &decision);

    PolicyConfig config_;
    std::vector<CostPoint> rle_curve_;
    std::vector<CostPoint> zvc_curve_;
    std::vector<CostPoint> zlib_curve_;
    std::unordered_map<std::string, LayerState> layers_;
    uint64_t switches_ = 0;
    uint64_t decisions_ = 0;
};

} // namespace cdma

#endif // CDMA_COMPRESS_POLICY_HH
