/**
 * @file
 * DEFLATE-style compressor standing in for zlib ("ZL" in the paper's
 * figures, Section V-A). Implements the full algorithm family from
 * scratch — LZ77 with hash-chain matching plus per-window dynamic
 * canonical Huffman coding over the RFC 1951 literal/length and distance
 * alphabets — but serializes the code-length tables with a simple
 * run-length scheme instead of the RFC 1951 bit-exact container (we never
 * need interoperability with gzip, only representative compression
 * ratios). The paper uses zlib purely as an upper bound on what a complex
 * hardware compressor could achieve; this codec plays the same role.
 */

#ifndef CDMA_COMPRESS_DEFLATE_HH
#define CDMA_COMPRESS_DEFLATE_HH

#include "compress/compressor.hh"
#include "compress/lz77.hh"

namespace cdma {

/** DEFLATE-style (LZ77 + dynamic Huffman) compressor ("ZL"). */
class DeflateCompressor : public Compressor
{
  public:
    /** Literal/length alphabet size (RFC 1951). */
    static constexpr int kLitLenSymbols = 286;
    /** Distance alphabet size (RFC 1951). */
    static constexpr int kDistSymbols = 30;
    /** End-of-block symbol. */
    static constexpr int kEndOfBlock = 256;
    /** Longest Huffman code we emit. */
    static constexpr int kMaxCodeLength = 15;

    explicit DeflateCompressor(
        uint64_t window_bytes = Compressor::kDefaultWindowBytes,
        const Lz77Config &lz_config = {},
        const KernelOps *kernels = nullptr);

    std::string name() const override { return "ZL"; }

    /**
     * Streaming codec: the LZ77 tokenizer runs through the kernel
     * backend's match-extension scan into a per-thread reusable scratch
     * (no token-vector allocation per window), the encoder's BitWriter
     * appends straight into the shared payload vector, and the decoder
     * writes literals/matches into the caller's region, copying
     * non-overlapping matches with memcpy.
     */
    void compressWindowInto(std::span<const uint8_t> window,
                            ByteVec &out) const override;

    Status decompressWindowInto(std::span<const uint8_t> payload,
                                uint64_t original_bytes,
                                uint8_t *out) const override;

    uint64_t compressedBound(uint64_t raw_len) const override;

  private:
    Lz77Config lz_config_;
};

} // namespace cdma

#endif // CDMA_COMPRESS_DEFLATE_HH
