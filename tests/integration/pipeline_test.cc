/**
 * @file
 * Cross-module integration tests: the complete reproduction pipeline on
 * real data, end to end — train a scaled network with SGD, compress its
 * actual activation maps, describe the live network, and replay a
 * training iteration in the DES. These tests guard the seams between
 * the training framework, the codecs, the descriptors, and the
 * simulator that the figure harnesses rely on.
 */

#include <gtest/gtest.h>

#include "cdma/engine.hh"
#include "common/rng.hh"
#include "data/synthetic.hh"
#include "dnn/trainer.hh"
#include "models/describe.hh"
#include "models/scaled.hh"
#include "perf/step_sim.hh"
#include "sparsity/schedule.hh"

namespace cdma {
namespace {

/** Train a scaled network briefly and return it with data still loaded. */
struct TrainedNet {
    Network net;
    double accuracy = 0.0;

    explicit TrainedNet(const std::string &name, int iterations = 80)
    {
        Rng rng(2025);
        net = buildScaledByName(name, rng);
        SyntheticDataset dataset;
        TrainConfig config;
        config.iterations = iterations;
        config.batch_size = 16;
        config.snapshot_every = iterations;
        Trainer trainer(net, dataset, config);
        trainer.run();
        accuracy = trainer.evaluate(2);
        // Leave a forward pass's activations in place for inspection.
        Minibatch probe = dataset.nextValBatch(8);
        net.setTraining(false);
        net.forward(probe.images);
    }
};

TEST(Pipeline, RealActivationsCompressAboveDensityBound)
{
    TrainedNet trained("AlexNet");
    const auto zvc = makeCompressor(Algorithm::Zvc);
    int checked = 0;
    for (const auto &record : trained.net.activationRecords()) {
        if (!record.relu_sparse)
            continue;
        const Tensor4D &map =
            trained.net.outputs()[record.output_index];
        const double ratio = zvc->measureRatio(map.rawBytes());
        // ZVC's ratio on real data must match its analytic form within
        // ~5%: 1/(density + 1/32), floored at 1.
        const double predicted =
            std::max(1.0, 1.0 / (record.density + 1.0 / 32.0));
        EXPECT_NEAR(ratio, predicted, predicted * 0.05) << record.label;
        ++checked;
    }
    EXPECT_GE(checked, 4);
}

TEST(Pipeline, RealActivationsRoundTripThroughAllCodecs)
{
    TrainedNet trained("VGG", 40);
    for (const auto &record : trained.net.activationRecords()) {
        const Tensor4D &map =
            trained.net.outputs()[record.output_index];
        const auto raw = map.rawBytes();
        for (Algorithm algorithm : kAllAlgorithms) {
            const auto compressor = makeCompressor(algorithm);
            const auto compressed = compressor->compress(raw);
            const auto restored = compressor->decompress(compressed);
            ASSERT_TRUE(restored.ok()) << restored.status().toString();
            ASSERT_EQ(restored->size(), raw.size());
            EXPECT_TRUE(std::equal(restored->begin(), restored->end(),
                                   raw.begin()))
                << record.label << " under "
                << algorithmName(algorithm);
        }
    }
}

TEST(Pipeline, DescribedNetworkDrivesSimulator)
{
    TrainedNet trained("AlexNet", 40);
    const NetworkDesc desc = describeNetwork(
        "ScaledAlexNet", trained.net, Shape4D{1, 3, 32, 32}, 16);

    // Real per-layer ZVC ratios from the trained activations.
    const auto zvc = makeCompressor(Algorithm::Zvc);
    std::vector<double> ratios;
    for (const auto &record : trained.net.activationRecords()) {
        const Tensor4D &map =
            trained.net.outputs()[record.output_index];
        ratios.push_back(zvc->measureRatio(map.rawBytes()));
    }
    ASSERT_EQ(ratios.size(), desc.layers.size());

    VdnnMemoryManager manager(desc, 16);
    CdmaEngine engine(CdmaConfig{});
    PerfModel perf;
    StepSimulator sim(manager, engine, perf, CudnnVersion::V5);
    const StepResult oracle = sim.run(StepMode::Oracle);
    const StepResult vdnn = sim.run(StepMode::Vdnn);
    const StepResult cdma = sim.run(StepMode::Cdma, ratios);

    EXPECT_GT(oracle.total_seconds, 0.0);
    EXPECT_GE(vdnn.total_seconds, oracle.total_seconds - 1e-15);
    EXPECT_LE(cdma.total_seconds, vdnn.total_seconds + 1e-15);
    EXPECT_LT(cdma.wire_transfer_bytes, vdnn.wire_transfer_bytes);
}

TEST(Pipeline, ScheduleRanksLayersLikeRealTraining)
{
    // The analytic density schedule should agree with real training on
    // the *ordering*: FC rows sparser than the first conv row.
    TrainedNet trained("AlexNet");
    const auto records = trained.net.activationRecords();

    double first_conv = -1.0, min_fc = 2.0;
    for (const auto &record : records) {
        if (record.type == "conv" && first_conv < 0.0)
            first_conv = record.density;
        if (record.type == "fc" && record.relu_sparse)
            min_fc = std::min(min_fc, record.density);
    }
    ASSERT_GT(first_conv, 0.0);
    ASSERT_LT(min_fc, 2.0);
    EXPECT_LT(min_fc, first_conv);
}

TEST(Pipeline, TrainingImprovesOverInitialization)
{
    TrainedNet trained("NiN", 60);
    EXPECT_GT(trained.accuracy, 0.2); // chance is 0.1
}

TEST(Pipeline, CdmaEngineOnRealTensors)
{
    TrainedNet trained("SqueezeNet", 40);
    CdmaConfig config;
    config.compression.algorithm = Algorithm::Zvc;
    CdmaEngine engine(config);

    uint64_t raw_total = 0, wire_total = 0;
    for (const auto &record : trained.net.activationRecords()) {
        const Tensor4D &map =
            trained.net.outputs()[record.output_index];
        const TransferPlan plan =
            engine.planTransfer(record.label, map.rawBytes());
        raw_total += plan.raw_bytes;
        wire_total += plan.wire_bytes;
        EXPECT_GE(plan.ratio, 1.0) << record.label;
        EXPECT_GT(plan.seconds, 0.0) << record.label;
    }
    // Network-wide, real trained activations must compress beyond 1.5x.
    EXPECT_GT(static_cast<double>(raw_total) /
                  static_cast<double>(wire_total),
              1.5);
}

} // namespace
} // namespace cdma
