/**
 * @file
 * Dropout regularization (Srivastava et al.), used by the paper's training
 * methodology: "Dropout is employed for the fully-connected layers with a
 * rate of 0.5" (Section VI). Inverted-dropout scaling keeps inference a
 * no-op.
 */

#ifndef CDMA_DNN_DROPOUT_HH
#define CDMA_DNN_DROPOUT_HH

#include "common/rng.hh"
#include "dnn/layer.hh"

namespace cdma {

/** Inverted dropout layer. */
class Dropout : public Layer
{
  public:
    /**
     * @param name Layer instance name.
     * @param rate Probability of zeroing an activation (0.5 in the paper).
     * @param rng Mask-generation stream.
     */
    Dropout(std::string name, float rate, Rng &rng);

    std::string type() const override { return "dropout"; }
    Shape4D outputShape(const Shape4D &input) const override;
    Tensor4D forward(const Tensor4D &input) override;
    Tensor4D backward(const Tensor4D &output_grad) override;

  private:
    float rate_;
    Rng rng_;
    std::vector<uint8_t> mask_;
};

} // namespace cdma

#endif // CDMA_DNN_DROPOUT_HH
