/**
 * @file
 * Occupancy model of the cDMA staging buffer ("B" in Figure 9). The DMA
 * engine launches read requests against GPU DRAM at the compression fetch
 * bandwidth without knowing which responses will compress well; responses
 * that stay uncompressed must be buffered until the (much slower) PCIe
 * link drains them. Section V-C sizes the buffer at the bandwidth-delay
 * product: 200 GB/s x 350 ns = 70 KB. This model replays a stream of
 * per-line compression ratios and reports the peak occupancy, validating
 * the sizing rule and powering the buffer-sizing ablation bench.
 */

#ifndef CDMA_GPU_DMA_BUFFER_HH
#define CDMA_GPU_DMA_BUFFER_HH

#include <cstdint>
#include <vector>

namespace cdma {

/** Configuration of the buffer occupancy replay. */
struct DmaBufferConfig {
    double fetch_bandwidth = 200.0e9; ///< DRAM read rate (B/s)
    double pcie_bandwidth = 16.0e9;   ///< drain rate (B/s)
    double dma_latency = 350.0e-9;    ///< request-to-data latency (s)
    uint64_t line_bytes = 128;        ///< request granularity
};

/** Result of one occupancy replay. */
struct DmaBufferStats {
    uint64_t peak_occupancy_bytes = 0;
    uint64_t total_fetched_bytes = 0;
    uint64_t total_drained_bytes = 0;
    double elapsed_seconds = 0.0;
    /** Fraction of time the PCIe output stream had data available. */
    double pcie_busy_fraction = 0.0;
};

/**
 * Event-driven replay of the fetch/compress/drain pipeline over a stream
 * of per-line compressed sizes.
 */
class DmaBufferModel
{
  public:
    explicit DmaBufferModel(const DmaBufferConfig &config = {});

    /**
     * Replay a transfer whose lines compress to the given sizes (bytes,
     * one entry per line of line_bytes raw data). Fetches are issued
     * continuously at fetch_bandwidth; each line lands in the buffer
     * dma_latency after its request completes and leaves at
     * pcie_bandwidth in compressed form.
     */
    DmaBufferStats replay(const std::vector<uint32_t> &line_sizes) const;

    /** The bandwidth-delay product sizing rule of Section V-C. */
    uint64_t requiredBufferBytes() const;

  private:
    DmaBufferConfig config_;
};

} // namespace cdma

#endif // CDMA_GPU_DMA_BUFFER_HH
