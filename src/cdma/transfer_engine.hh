/**
 * @file
 * Unified full-duplex transfer engine — one DMA engine arbitrating both
 * directions of the PCIe link, the way the paper's Figure 2(b) overlaps
 * the offload of layer n+1's input with the prefetch of layer n-1's and
 * the Figure 13 speedups assume the cDMA unit services both
 * concurrently. The engine owns one sim::EventQueue and one duplex
 * sim::Channel and runs BOTH double-buffered pipelines on it:
 *
 *   offload:  serial compression engine (COMP_BW) -> staging buffer ->
 *             wire out (DuplexChannel Direction::Out)
 *   prefetch: wire in (Direction::In) -> staging buffer ->
 *             serial decompression engine (COMP_BW)
 *
 * The compression and decompression engines are provisioned separately
 * (the paper's CPE vs DPE replicas, Section V-B), so they never contend
 * with each other — only the wire is shared, and only under
 * DuplexMode::Half, where the link arbiter (round-robin or fixed
 * priority) picks which pending direction's shard crosses next. With
 * the opposing direction idle the duplex DES degenerates exactly to the
 * single-direction pipelines that OffloadScheduler / PrefetchScheduler
 * model (their closed forms are pinned against it at 1e-9), so the two
 * direction schedulers are now thin facades over this engine, defined
 * at the bottom of this header — the one header to include for
 * transfer planning.
 *
 * Since the topology redesign the wire legs ride a Route through a
 * sim Topology graph instead of one hardwired DuplexChannel: the
 * default configuration routes over the degenerate two-node GPU—host
 * graph (identical event timeline, pins unmoved), and a configured
 * TopologyConfig routes them across switches and shared uplinks. The
 * DES core is DuplexPipeline, a restartable driver FleetSimulator
 * instantiates once per GPU on one shared LinkNetwork.
 */

#ifndef CDMA_CDMA_TRANSFER_ENGINE_HH
#define CDMA_CDMA_TRANSFER_ENGINE_HH

#include <queue>
#include <span>
#include <vector>

#include "cdma/engine.hh"
#include "cdma/spill_arena.hh"
#include "common/status.hh"
#include "sim/topology.hh"

namespace cdma {

namespace obs {
class HistogramMetric;
class TraceRecorder;
} // namespace obs

/** Byte counts of one staging shard entering the pipeline model. */
struct ShardTransfer {
    uint64_t raw_bytes = 0;  ///< uncompressed bytes the shard covers
    uint64_t wire_bytes = 0; ///< store-raw-floored bytes put on the wire
    /** Wire crossings the shard took (1 = landed clean first try). */
    uint32_t attempts = 1;
    /** Wire bytes of the failed crossings (re-sent under RetryPolicy). */
    uint64_t failed_wire_bytes = 0;
    /** Shard was downgraded to raw framing after repeated faults. */
    bool degraded = false;
};

/** Outcome of one scheduled offload: data and modeled timing. */
struct OffloadResult {
    /** Compressed buffer, byte-identical to ParallelCompressor::compress. */
    CompressedBuffer buffer;
    /** Pipeline timing over the real per-shard compressed sizes. */
    OffloadTiming timing;
    /** Per-shard byte counts, in drain order. */
    std::vector<ShardTransfer> shards;
    /** Fault/retry accounting (expectation-priced on this flow). */
    TransferIntegrity integrity;
};

/** Outcome of an offload spilled into an arena instead of a buffer. */
struct SpilledOffload {
    /** Arena reference to the stored shards (caller releases it). */
    SpillTicket ticket = 0;
    /** Pipeline timing over the real per-shard compressed sizes. */
    OffloadTiming timing;
    /** Per-shard byte counts, in drain order. */
    std::vector<ShardTransfer> shards;
    /** Fault/retry accounting (sampled per crossing on this flow). */
    TransferIntegrity integrity;
};

/** Outcome of one scheduled prefetch: restored data and modeled timing. */
struct PrefetchResult {
    /** Reconstructed bytes, identical to the original offloaded buffer. */
    ByteVec data;
    /** Pipeline timing over the real per-shard compressed sizes. */
    PrefetchTiming timing;
    /** Per-shard byte counts, in arrival order. */
    std::vector<ShardTransfer> shards;
    /** Fault/retry accounting (sampled on the arena flow,
     *  expectation-priced on the buffer flow). */
    TransferIntegrity integrity;
};

/** Stage bandwidths and staging depth of one engine's pipelines. */
struct PipelineSpec {
    double compress_bandwidth = 0.0;   ///< serial CPE fetch rate
    double decompress_bandwidth = 0.0; ///< serial DPE writeback rate
    unsigned staging_buffers = 2;      ///< per-direction staging pool
    double backoff_base_seconds = 0.0; ///< retry backoff base (0 = none)
};

/**
 * The duplex DES core as a restartable driver: both double-buffered
 * pipelines of ONE engine, with the wire legs routed through a
 * LinkNetwork instead of a hardwired channel. Offload shards travel
 * the offload route (compress -> staging -> route out), prefetch
 * shards travel it reversed (route in -> staging -> expand). Several
 * pipelines can share one network/event queue — that is exactly a
 * fleet, and @p source tags this pipeline's wire legs so shared edges
 * attribute queueing waits across pipelines (RouteGrant's
 * cross_source_wait).
 *
 * Usage: construct, start(), run the network's event queue (once, even
 * with many pipelines started), then collect().
 */
class DuplexPipeline
{
  public:
    DuplexPipeline(LinkNetwork &network, Route offload_route,
                   std::vector<ShardTransfer> offload_shards,
                   std::vector<ShardTransfer> prefetch_shards,
                   const PipelineSpec &spec, unsigned source = 0);

    /**
     * Attach observability sinks (both non-owning, either may be null);
     * call before start(). With a trace recorder, the pipeline emits
     * per-shard "compress"/"expand" spans and wire "landed"/"retry"
     * instants onto the @p name process's stage tracks ("compress",
     * "wire.out", "wire.in", "expand") — wire legs are instants here,
     * not spans, because a multi-hop route's [first-hop start, last-hop
     * end] windows can partially overlap (full per-edge spans live on
     * the LinkNetwork's edge tracks). With a metrics registry, every
     * shard's end-to-end wire latency lands in the
     * `transfer.{offload,prefetch}.shard_latency_seconds` histograms.
     */
    void setObservers(obs::TraceRecorder *trace,
                      obs::MetricsRegistry *metrics,
                      const std::string &name);

    /** Schedule the initial events; the caller runs the queue. */
    void start();

    /** Both shard trains fully drained (valid after the queue ran). */
    bool done() const;

    /** Per-direction timing breakdown; call after the queue drained. */
    DuplexTiming collect() const;

    /** Cross-pipeline wait this pipeline's wire legs paid on shared
     *  edges (sum of RouteGrant::cross_source_wait, both directions). */
    SimTime crossSourceWaitSeconds() const { return cross_source_wait_; }

    /** Completion time of this pipeline's last drained event. */
    SimTime lastDrain() const
    {
        return std::max(last_off_drain_, last_expand_);
    }

  private:
    void startCompress();
    void startWire();
    void startExpand();

    /** Emit the "landed" (and, on retried shards, "retry") instants of
     *  one drained wire leg; no-op without a trace recorder. */
    void traceWireGrant(uint32_t track, size_t shard,
                        const ShardTransfer &xfer, const RouteGrant &grant);

    LinkNetwork &network_;
    Route offload_route_;
    Route prefetch_route_;
    std::vector<ShardTransfer> offload_shards_;
    std::vector<ShardTransfer> prefetch_shards_;
    PipelineSpec spec_;
    unsigned source_;

    // Offload pipeline state (compress -> staging -> route out).
    size_t off_next_ = 0;
    size_t off_in_flight_ = 0; ///< shards holding an offload buffer
    bool compressing_ = false; ///< the compression engine is serial
    SimTime last_off_drain_ = 0.0;

    // Prefetch pipeline state (route in -> staging -> expand).
    size_t pre_next_ = 0;
    size_t pre_in_flight_ = 0; ///< shards holding a prefetch buffer
    bool expanding_ = false;   ///< the decompression engine is serial
    std::queue<size_t> landed_; ///< arrived shards awaiting expansion
    SimTime last_expand_ = 0.0;
    size_t off_done_ = 0;
    size_t pre_done_ = 0;

    // Wire accounting accumulated from the grants.
    SimTime off_wire_seconds_ = 0.0;
    SimTime pre_wire_seconds_ = 0.0;
    SimTime off_contention_ = 0.0;
    SimTime pre_contention_ = 0.0;
    SimTime cross_source_wait_ = 0.0;

    // Observability sinks (see setObservers; all null = zero cost).
    obs::TraceRecorder *trace_ = nullptr;
    uint32_t compress_track_ = 0;
    uint32_t wire_out_track_ = 0;
    uint32_t wire_in_track_ = 0;
    uint32_t expand_track_ = 0;
    obs::HistogramMetric *off_latency_hist_ = nullptr;
    obs::HistogramMetric *pre_latency_hist_ = nullptr;
};

/**
 * Drives real compression/decompression for both PCIe directions and
 * models them racing on one (possibly shared) link.
 */
class TransferEngine
{
  public:
    explicit TransferEngine(const CdmaEngine &engine);

    /** Windows per staging shard (>= 1), from CdmaConfig::shard_bytes. */
    uint64_t shardWindows() const { return shard_windows_; }

    /** The cDMA engine this transfer engine drives. */
    const CdmaEngine &cdma() const { return engine_; }

    // ---- Real-bytes flows (the direction schedulers delegate here) ----

    /**
     * Offload @p data: compress it shard-by-shard on the engine's lanes,
     * stitch the shards into a CompressedBuffer as they drain (in shard
     * order, while later shards are still compressing), and model the
     * double-buffered pipeline over the measured per-shard sizes.
     *
     * @p codec overrides the engine's fixed codec for this transfer
     * (the adaptive policy's choice — requires the engine's codec bank
     * when it differs from the fixed codec); nullopt = the engine's
     * configured compressor, the historical behavior.
     */
    OffloadResult offload(std::span<const uint8_t> data,
                          std::optional<Codec> codec = std::nullopt) const;

    /**
     * Offload @p data into @p arena: shards stream from the compression
     * lanes straight into recycled arena slots (no stitched
     * CompressedBuffer, no per-layer payload allocation in steady
     * state). The returned ticket holds the compressed activations
     * until the backward pass prefetches and releases them.
     *
     * With a fault injector configured, each shard's host-bound wire
     * crossing samples the fault process: damaged crossings are caught
     * by the length/CRC-32C framing checks and re-sent under the
     * engine's RetryPolicy (degrading to raw framing after repeated
     * failures). Returns Status::retryExhausted — with the partially
     * filled ticket released — when a shard burns every attempt.
     *
     * @p codec as in offload(): per-transfer override of the engine's
     * fixed codec. Every stored shard carries its codec tag, so spills
     * written with different overrides decode correctly side by side.
     */
    StatusOr<SpilledOffload>
    offloadInto(std::span<const uint8_t> data, SpillArena &arena,
                std::optional<Codec> codec = std::nullopt) const;

    /**
     * offloadInto() against a two-tier arena: identical flow, and the
     * spill is sealed on success — making it eligible for FIFO
     * eviction to the arena's backing (SSD) tier under host-capacity
     * pressure.
     */
    StatusOr<SpilledOffload>
    offloadInto(std::span<const uint8_t> data, TieredSpillArena &arena,
                std::optional<Codec> codec = std::nullopt) const;

    /**
     * Prefetch @p buffer: reconstruct it shard-by-shard on the engine's
     * lanes (consumed in deterministic shard order) and model the
     * double-buffered pipeline over the measured per-shard sizes.
     * Decode errors (a corrupt or truncated payload) propagate as a
     * non-OK Status instead of crashing. The stitched buffer carries no
     * per-shard CRC framing, so a configured fault injector is priced
     * in expectation on this flow rather than sampled.
     */
    StatusOr<PrefetchResult> prefetch(const CompressedBuffer &buffer) const;

    /**
     * Prefetch a spilled buffer straight out of @p arena's shard slots
     * (no stitched CompressedBuffer in between). The ticket stays live;
     * the caller releases it once the restored bytes are consumed.
     *
     * Every shard's payload is verified against its stored CRC-32C
     * before expansion (Status::integrityError on mismatch). With a
     * fault injector configured, each GPU-bound crossing samples the
     * fault process; faulted crossings re-read the pristine arena slot
     * under the RetryPolicy, so the restored bytes stay byte-identical
     * to the offloaded data whenever the prefetch succeeds.
     */
    StatusOr<PrefetchResult> prefetch(const SpillArena &arena,
                                      SpillTicket ticket) const;

    /**
     * Arena prefetch against a two-tier arena: an evicted spill is
     * first promoted back to the host tier (the SSD -> host readback,
     * counted in the arena's tierStats), then expanded exactly like
     * the single-tier flow.
     */
    StatusOr<PrefetchResult> prefetch(TieredSpillArena &arena,
                                      SpillTicket ticket) const;

    /** Outcome of one full-duplex step: both real flows + the race. */
    struct DuplexResult {
        SpilledOffload offload;   ///< @p offload_data spilled to the arena
        PrefetchResult prefetch;  ///< @p prefetch_ticket restored
        /** Both measured shard trains raced on the configured link. */
        DuplexTiming timing;
    };

    /**
     * One steady-state training-loop step on the unified ticket flow:
     * compress and spill @p offload_data into @p arena while prefetching
     * (and expanding) @p prefetch_ticket out of it, with both measured
     * shard trains racing on the configured duplex link. The caller
     * releases the prefetched ticket once the restored bytes are
     * consumed. Fault handling follows the two underlying flows; the
     * first leg to exhaust its retries surfaces its Status.
     */
    StatusOr<DuplexResult> transfer(std::span<const uint8_t> offload_data,
                                    SpillArena &arena,
                                    SpillTicket prefetch_ticket) const;

    // ---- Timing models ----

    /**
     * The duplex race of two measured shard trains under this engine's
     * configuration (bandwidths, staging depth, duplex mode, arbiter).
     * Either train may be empty (single-direction degenerate case).
     */
    DuplexTiming duplexTiming(
        std::span<const ShardTransfer> offload_shards,
        std::span<const ShardTransfer> prefetch_shards) const;

    /**
     * Analytic duplex model: both directions cut into uniform staging
     * shards (plus a trailing partial) at their known compression
     * ratios, then raced through the duplex DES. Either direction may
     * be empty (raw_bytes = 0).
     */
    DuplexTiming modelFromRatio(uint64_t offload_raw, double offload_ratio,
                                uint64_t prefetch_raw,
                                double prefetch_ratio) const;

    /**
     * The core duplex DES: both double-buffered pipelines run on one
     * event queue, wire transfers of both directions submitted to a
     * DuplexChannel. Offload shard k's compression starts when the
     * serial compression engine AND an offload staging buffer are free;
     * its wire leg queues on Direction::Out. Prefetch shard k's wire
     * leg (Direction::In) starts when a prefetch staging buffer is
     * free; its expansion queues on the serial decompression engine.
     * Under DuplexMode::Half both directions serialize on the link and
     * @p arbiter breaks ties; under Full they never interact. The
     * per-direction staging pools are independent (@p staging_buffers
     * each).
     *
     * Retry pricing: a shard's wire leg carries its failed crossings
     * too (wire_bytes + failed_wire_bytes on the link) plus the
     * exponential backoff @p backoff_base_seconds * (2^(attempts-1) - 1)
     * as extra latency — the retry sequence holds the shard's DMA
     * transaction slot until it lands. Shards with attempts == 1 price
     * exactly as before, which keeps the schedulers' closed forms
     * pinned to this DES on fault-free trains.
     */
    static DuplexTiming pipelineTiming(
        std::span<const ShardTransfer> offload_shards,
        std::span<const ShardTransfer> prefetch_shards,
        double compress_bandwidth, double wire_bandwidth,
        double decompress_bandwidth, unsigned staging_buffers,
        DuplexMode mode, LinkArbiter arbiter,
        double backoff_base_seconds = 0.0);

    /**
     * Shard train of a raw_bytes transfer at ratio (uniform + tail).
     * With a fault injector configured the train carries the fault
     * process in expectation (see applyExpectedFaults()).
     */
    std::vector<ShardTransfer> shardTrain(uint64_t raw_bytes,
                                          double ratio) const;

    /**
     * Fault-free shard train of @p raw_bytes cut into uniform
     * @p shard_raw_bytes shards (plus a trailing partial) at @p ratio,
     * with the per-shard wire bytes store-raw-floored the way the
     * real flows truncate them. The engine-free building block fleet
     * scenarios use to fabricate per-GPU trains.
     */
    static std::vector<ShardTransfer> uniformShardTrain(
        uint64_t raw_bytes, double ratio, uint64_t shard_raw_bytes);

    /**
     * Fold the configured fault process into @p shards analytically:
     * each shard's attempts / failed_wire_bytes become the expectation
     * under the injector's per-crossing failure probability and the
     * engine's RetryPolicy. No RNG draws — the sampled streams of the
     * arena flows are untouched. No-op without an injector.
     */
    void applyExpectedFaults(std::vector<ShardTransfer> &shards) const;

    /** Sum a shard train's attempts / retries / failed wire bytes. */
    static TransferIntegrity trainIntegrity(
        std::span<const ShardTransfer> shards);

  private:
    DuplexTiming timingFor(std::span<const ShardTransfer> offload_shards,
                           std::span<const ShardTransfer> prefetch_shards)
        const;

    const CdmaEngine &engine_;
    uint64_t shard_windows_;
};

// ---------------------------------------------------------------------
// Single-direction facades. Historically src/cdma/offload_scheduler.hh
// and prefetch_scheduler.hh; folded in here so transfer planning is one
// include. Each is the duplex TransferEngine viewed with the opposing
// direction idle, plus the allocation-free closed form of its pipeline
// (pinned against the duplex DES at 1e-9 by the scheduler tests).
// ---------------------------------------------------------------------

/**
 * Drives compression and models the double-buffered compress/transfer
 * pipeline for one cDMA engine (the offload-only view of the duplex
 * TransferEngine). For uniform shards (compression time c, wire time
 * w, n shards) the double-buffered makespan is n*max(c,w) + min(c,w);
 * modelFromRatio() extends that with the trailing-partial-shard and
 * single-staging-buffer cases.
 */
class OffloadScheduler
{
  public:
    explicit OffloadScheduler(const CdmaEngine &engine);

    /** Windows per staging shard (>= 1), from TransferConfig::shard_bytes. */
    uint64_t shardWindows() const { return engine_.shardWindows(); }

    /** See TransferEngine::offload(). */
    OffloadResult offload(std::span<const uint8_t> data) const;

    /** See TransferEngine::offloadInto(). */
    StatusOr<SpilledOffload> offloadInto(std::span<const uint8_t> data,
                                         SpillArena &arena) const;

    /**
     * Pipeline timing for a transfer of @p raw_bytes at a known
     * compression ratio: allocation-free closed form over uniform
     * staging shards plus a trailing partial. For n uniform shards
     * (compression time c, wire time w, tail c_t/w_t):
     *
     *   wire-bound  (w >= c): c + n*w + w_t
     *   comp-bound  (c >  w): n*c + max(c_t, w) + w_t
     *
     * one staging buffer serializes fully; the duplex DES
     * (TransferEngine::pipelineTiming) is the pinned reference.
     */
    OffloadTiming modelFromRatio(uint64_t raw_bytes, double ratio) const;

    /**
     * The single-direction pipeline reference: the duplex DES with the
     * prefetch direction idle, routed over the degenerate two-node
     * graph. Shard k's compression starts when the compression engine
     * AND a staging buffer are free; its wire transfer starts when its
     * compression ends and the channel is free (FIFO).
     */
    static OffloadTiming pipelineTiming(std::span<const ShardTransfer> shards,
                                        double compress_bandwidth,
                                        double wire_bandwidth,
                                        unsigned staging_buffers = 2);

  private:
    TransferEngine engine_;
};

/**
 * Drives decompression and models the double-buffered transfer/expand
 * pipeline for one cDMA engine (the prefetch-only view of the duplex
 * TransferEngine) — OffloadScheduler's mirror image for the backward
 * pass, with the stages swapped: wire in, then the serial DPE expands
 * while the next shard crosses.
 */
class PrefetchScheduler
{
  public:
    explicit PrefetchScheduler(const CdmaEngine &engine);

    /** Windows per staging shard (>= 1), from TransferConfig::shard_bytes. */
    uint64_t shardWindows() const { return engine_.shardWindows(); }

    /** See TransferEngine::prefetch(const CompressedBuffer &). */
    StatusOr<PrefetchResult> prefetch(const CompressedBuffer &buffer) const;

    /** See TransferEngine::prefetch(const SpillArena &, SpillTicket). */
    StatusOr<PrefetchResult> prefetch(const SpillArena &arena,
                                      SpillTicket ticket) const;

    /**
     * Closed-form prefetch timing of @p raw_bytes at @p ratio —
     * OffloadScheduler::modelFromRatio with the stages swapped (wire
     * first, then the serial decompression engine); pinned against the
     * duplex DES at 1e-9 by the scheduler tests.
     */
    PrefetchTiming modelFromRatio(uint64_t raw_bytes, double ratio) const;

    /**
     * The single-direction pipeline reference: the duplex DES with the
     * offload direction idle, routed over the degenerate two-node
     * graph. Shard k's wire transfer starts when the (FIFO) channel
     * AND a staging buffer are free; its decompression starts when its
     * last wire byte lands and the serial engine is free.
     */
    static PrefetchTiming pipelineTiming(
        std::span<const ShardTransfer> shards, double wire_bandwidth,
        double decompress_bandwidth, unsigned staging_buffers = 2);

  private:
    TransferEngine engine_;
};

} // namespace cdma

#endif // CDMA_CDMA_TRANSFER_ENGINE_HH
