/**
 * @file
 * Training loop driver. Mirrors the paper's methodology (Section VI):
 * SGD with momentum from an initial learning rate of 0.01, step decays of
 * the learning rate as training progresses, and periodic sampling of the
 * loss value and per-layer activation density — the measurements behind
 * Figures 4, 6 and 7.
 */

#ifndef CDMA_DNN_TRAINER_HH
#define CDMA_DNN_TRAINER_HH

#include <functional>
#include <vector>

#include "data/synthetic.hh"
#include "dnn/loss.hh"
#include "dnn/network.hh"

namespace cdma {

/** Training-run configuration. */
struct TrainConfig {
    int iterations = 1000;
    int64_t batch_size = 32;
    SgdConfig sgd = {0.01f, 0.9f, 0.0005f};
    /** Fractions of the run at which the LR is multiplied by lr_decay. */
    std::vector<double> lr_drop_points = {0.5, 0.75};
    float lr_decay = 0.1f;
    /** Take a density/loss snapshot every this many iterations. */
    int snapshot_every = 100;
};

/** One sampled point of the training trajectory. */
struct TrainSnapshot {
    int iteration = 0;
    double progress = 0.0; ///< iteration / total, in [0, 1]
    double loss = 0.0;
    double train_accuracy = 0.0;
    /** Per-layer activation records at this point in training. */
    std::vector<ActivationRecord> records;
};

/** Runs SGD training and collects the trajectory. */
class Trainer
{
  public:
    /** Callback invoked on every snapshot (may be empty). */
    using SnapshotHook = std::function<void(const TrainSnapshot &)>;

    Trainer(Network &network, SyntheticDataset &dataset,
            const TrainConfig &config);

    /** Run the configured number of iterations; returns all snapshots. */
    std::vector<TrainSnapshot> run(const SnapshotHook &hook = {});

    /** Validation accuracy over @p batches batches of the val stream. */
    double evaluate(int batches = 8);

  private:
    /** Learning rate at @p progress given the decay schedule. */
    float learningRate(double progress) const;

    Network &network_;
    SyntheticDataset &dataset_;
    TrainConfig config_;
    SoftmaxCrossEntropy loss_;
};

} // namespace cdma

#endif // CDMA_DNN_TRAINER_HH
