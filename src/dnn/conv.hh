/**
 * @file
 * 2-D convolution layer implemented the way cuDNN's GEMM path works
 * (Section VI references [17]): im2col lowering followed by a dense
 * matrix multiply. The same lowering is reused for the backward data and
 * weight gradients.
 */

#ifndef CDMA_DNN_CONV_HH
#define CDMA_DNN_CONV_HH

#include "common/rng.hh"
#include "dnn/layer.hh"

namespace cdma {

/** Convolution hyper-parameters. */
struct ConvSpec {
    int64_t out_channels = 1;
    int64_t kernel = 3;
    int64_t stride = 1;
    int64_t pad = 0;
};

/** Convolutional layer (learnable weights + bias). */
class Conv2D : public Layer
{
  public:
    /**
     * @param name Layer instance name.
     * @param in_channels Input channel count.
     * @param spec Kernel geometry.
     * @param rng Weight-initialization stream (He/MSRA init, the standard
     *        choice for ReLU networks).
     */
    Conv2D(std::string name, int64_t in_channels, const ConvSpec &spec,
           Rng &rng);

    std::string type() const override { return "conv"; }
    Shape4D outputShape(const Shape4D &input) const override;
    Tensor4D forward(const Tensor4D &input) override;
    Tensor4D backward(const Tensor4D &output_grad) override;
    std::vector<ParamBlob *> params() override;

    /** Kernel geometry. */
    const ConvSpec &spec() const { return spec_; }

    /** Multiply-accumulate count for one forward pass of @p input. */
    static uint64_t forwardMacs(const Shape4D &input, const ConvSpec &spec);

    uint64_t forwardMacsPerImage(const Shape4D &input) const override;

  private:
    /** Lower one sample into a (C*K*K) x (Hout*Wout) column matrix. */
    void im2col(const Tensor4D &input, int64_t sample,
                std::vector<float> &columns) const;

    /** Scatter a column matrix back into a padded gradient image. */
    void col2im(const std::vector<float> &columns, int64_t sample,
                Tensor4D &input_grad) const;

    int64_t in_channels_;
    ConvSpec spec_;
    ParamBlob weights_; // [out_c][in_c * k * k]
    ParamBlob bias_;    // [out_c]
    Tensor4D cached_input_;
    Shape4D cached_output_shape_;
};

} // namespace cdma

#endif // CDMA_DNN_CONV_HH
