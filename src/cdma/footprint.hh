/**
 * @file
 * Section IX future-work extension: "Compression for GPU footprint
 * reduction". The cDMA engine as proposed leaves GPU-resident activation
 * maps uncompressed; this module models the follow-on design in which
 * the memory-controller compression units also *store* activations
 * compressed in GPU DRAM. Because the memory controller must still be
 * able to address and fetch arbitrary 128 B lines, compressed lines are
 * allocated in quantized slots (e.g. 32 B sectors) and a per-line
 * translation entry records each line's slot count — the "efficient
 * memory addressing scheme" the paper defers. The estimator quantifies
 * the capacity the scheme would reclaim and the metadata it would cost,
 * per network and training checkpoint.
 */

#ifndef CDMA_CDMA_FOOTPRINT_HH
#define CDMA_CDMA_FOOTPRINT_HH

#include <cstdint>
#include <vector>

#include "models/desc.hh"
#include "sparsity/schedule.hh"

namespace cdma {

/** Parameters of the compressed-in-DRAM layout. */
struct CompressedStoreConfig {
    /** Raw line granularity (one cache line, as in the ZVC engine). */
    uint64_t line_bytes = 128;
    /** Allocation quantum for compressed lines. */
    uint64_t sector_bytes = 32;
    /** Bytes of translation metadata per line (slot count + offset). */
    uint64_t metadata_per_line = 1;
};

/** Outcome of the footprint estimate for one network. */
struct CompressedFootprint {
    uint64_t raw_bytes = 0;        ///< uncompressed activations (+grads)
    uint64_t compressed_bytes = 0; ///< quantized compressed storage
    uint64_t metadata_bytes = 0;   ///< translation tables
    double savings_ratio = 1.0;    ///< raw / (compressed + metadata)

    /** Total resident bytes under the compressed store. */
    uint64_t totalBytes() const
    {
        return compressed_bytes + metadata_bytes;
    }
};

/**
 * Estimates GPU DRAM footprint with compressed activation storage.
 *
 * ZVC line sizes are derived analytically from each layer's density d:
 * a 128 B line holds 32 words of which ~32 d are non-zero, so its
 * compressed size is 4 + 4 * ceil(32 d) bytes in expectation, rounded up
 * to the sector quantum. The analytic model matches the codec exactly in
 * expectation (validated against ZvcCompressor in the unit tests).
 */
class CompressedFootprintEstimator
{
  public:
    explicit CompressedFootprintEstimator(
        const CompressedStoreConfig &config = {});

    /**
     * Footprint of @p network's activation maps (batch applied) at
     * training progress @p t under the density schedule.
     */
    CompressedFootprint estimate(const NetworkDesc &network,
                                 int64_t batch, double t) const;

    /**
     * Expected stored bytes of one raw line at activation density
     * @p density (before sector quantization).
     */
    double expectedLineBytes(double density) const;

    /** Stored bytes of a line after sector quantization. */
    uint64_t quantizedLineBytes(double density) const;

  private:
    CompressedStoreConfig config_;
};

} // namespace cdma

#endif // CDMA_CDMA_FOOTPRINT_HH
