#include "dnn/conv.hh"

#include <cmath>

#include "common/logging.hh"

namespace cdma {

Conv2D::Conv2D(std::string name, int64_t in_channels, const ConvSpec &spec,
               Rng &rng)
    : Layer(std::move(name)), in_channels_(in_channels), spec_(spec),
      weights_(static_cast<size_t>(spec.out_channels * in_channels *
                                   spec.kernel * spec.kernel)),
      bias_(static_cast<size_t>(spec.out_channels))
{
    CDMA_ASSERT(spec.out_channels > 0 && spec.kernel > 0 &&
                    spec.stride > 0 && spec.pad >= 0,
                "invalid conv spec for %s", this->name().c_str());
    // He initialization: std = sqrt(2 / fan_in), appropriate ahead of
    // ReLU nonlinearities.
    const double fan_in =
        static_cast<double>(in_channels * spec.kernel * spec.kernel);
    const double stddev = std::sqrt(2.0 / fan_in);
    for (auto &w : weights_.value)
        w = static_cast<float>(rng.normal(0.0, stddev));
}

Shape4D
Conv2D::outputShape(const Shape4D &input) const
{
    CDMA_ASSERT(input.c == in_channels_,
                "conv %s expects %lld input channels, got %lld",
                name().c_str(), static_cast<long long>(in_channels_),
                static_cast<long long>(input.c));
    const int64_t out_h =
        (input.h + 2 * spec_.pad - spec_.kernel) / spec_.stride + 1;
    const int64_t out_w =
        (input.w + 2 * spec_.pad - spec_.kernel) / spec_.stride + 1;
    CDMA_ASSERT(out_h > 0 && out_w > 0,
                "conv %s output collapses to zero for input %s",
                name().c_str(), input.str().c_str());
    return {input.n, spec_.out_channels, out_h, out_w};
}

uint64_t
Conv2D::forwardMacs(const Shape4D &input, const ConvSpec &spec)
{
    const int64_t out_h =
        (input.h + 2 * spec.pad - spec.kernel) / spec.stride + 1;
    const int64_t out_w =
        (input.w + 2 * spec.pad - spec.kernel) / spec.stride + 1;
    return static_cast<uint64_t>(input.n) *
        static_cast<uint64_t>(spec.out_channels) *
        static_cast<uint64_t>(out_h * out_w) *
        static_cast<uint64_t>(input.c * spec.kernel * spec.kernel);
}

uint64_t
Conv2D::forwardMacsPerImage(const Shape4D &input) const
{
    Shape4D one = input;
    one.n = 1;
    return forwardMacs(one, spec_);
}

void
Conv2D::im2col(const Tensor4D &input, int64_t sample,
               std::vector<float> &columns) const
{
    const Shape4D &in = input.shape();
    const Shape4D out = outputShape(in);
    const int64_t k = spec_.kernel;
    const int64_t patch = in.c * k * k;
    columns.assign(static_cast<size_t>(patch * out.h * out.w), 0.0f);

    for (int64_t c = 0; c < in.c; ++c) {
        for (int64_t kh = 0; kh < k; ++kh) {
            for (int64_t kw = 0; kw < k; ++kw) {
                const int64_t row = (c * k + kh) * k + kw;
                for (int64_t oh = 0; oh < out.h; ++oh) {
                    const int64_t ih = oh * spec_.stride - spec_.pad + kh;
                    if (ih < 0 || ih >= in.h)
                        continue;
                    for (int64_t ow = 0; ow < out.w; ++ow) {
                        const int64_t iw =
                            ow * spec_.stride - spec_.pad + kw;
                        if (iw < 0 || iw >= in.w)
                            continue;
                        columns[static_cast<size_t>(
                            row * out.h * out.w + oh * out.w + ow)] =
                            input.at(sample, c, ih, iw);
                    }
                }
            }
        }
    }
}

void
Conv2D::col2im(const std::vector<float> &columns, int64_t sample,
               Tensor4D &input_grad) const
{
    const Shape4D &in = input_grad.shape();
    const Shape4D out = outputShape(in);
    const int64_t k = spec_.kernel;

    for (int64_t c = 0; c < in.c; ++c) {
        for (int64_t kh = 0; kh < k; ++kh) {
            for (int64_t kw = 0; kw < k; ++kw) {
                const int64_t row = (c * k + kh) * k + kw;
                for (int64_t oh = 0; oh < out.h; ++oh) {
                    const int64_t ih = oh * spec_.stride - spec_.pad + kh;
                    if (ih < 0 || ih >= in.h)
                        continue;
                    for (int64_t ow = 0; ow < out.w; ++ow) {
                        const int64_t iw =
                            ow * spec_.stride - spec_.pad + kw;
                        if (iw < 0 || iw >= in.w)
                            continue;
                        input_grad.at(sample, c, ih, iw) +=
                            columns[static_cast<size_t>(
                                row * out.h * out.w + oh * out.w + ow)];
                    }
                }
            }
        }
    }
}

Tensor4D
Conv2D::forward(const Tensor4D &input)
{
    cached_input_ = input;
    const Shape4D out_shape = outputShape(input.shape());
    cached_output_shape_ = out_shape;
    Tensor4D output(out_shape);

    const int64_t patch = in_channels_ * spec_.kernel * spec_.kernel;
    const int64_t spatial = out_shape.h * out_shape.w;
    std::vector<float> columns;

    for (int64_t n = 0; n < input.shape().n; ++n) {
        im2col(input, n, columns);
        // GEMM: output[oc][s] = sum_p weights[oc][p] * columns[p][s].
        for (int64_t oc = 0; oc < spec_.out_channels; ++oc) {
            const float *w_row =
                weights_.value.data() + oc * patch;
            const float b = bias_.value[static_cast<size_t>(oc)];
            float *out_row = &output.at(n, oc, 0, 0);
            for (int64_t s = 0; s < spatial; ++s)
                out_row[s] = b;
            for (int64_t p = 0; p < patch; ++p) {
                const float w = w_row[p];
                if (w == 0.0f)
                    continue;
                const float *col_row =
                    columns.data() + static_cast<size_t>(p * spatial);
                for (int64_t s = 0; s < spatial; ++s)
                    out_row[s] += w * col_row[s];
            }
        }
    }
    return output;
}

Tensor4D
Conv2D::backward(const Tensor4D &output_grad)
{
    const Shape4D &in_shape = cached_input_.shape();
    const Shape4D &out_shape = cached_output_shape_;
    CDMA_ASSERT(output_grad.shape() == out_shape,
                "conv %s backward shape mismatch", name().c_str());

    Tensor4D input_grad(in_shape);
    const int64_t patch = in_channels_ * spec_.kernel * spec_.kernel;
    const int64_t spatial = out_shape.h * out_shape.w;

    std::vector<float> columns;
    std::vector<float> col_grad(
        static_cast<size_t>(patch * spatial), 0.0f);

    for (int64_t n = 0; n < in_shape.n; ++n) {
        im2col(cached_input_, n, columns);

        // dW[oc][p] += sum_s dY[oc][s] * columns[p][s]
        // db[oc]    += sum_s dY[oc][s]
        for (int64_t oc = 0; oc < spec_.out_channels; ++oc) {
            const float *dy_row = output_grad.data().data() +
                linearIndex(out_shape, output_grad.layout(), n, oc, 0, 0);
            float *dw_row = weights_.grad.data() + oc * patch;
            float dbias = 0.0f;
            for (int64_t s = 0; s < spatial; ++s)
                dbias += dy_row[s];
            bias_.grad[static_cast<size_t>(oc)] += dbias;
            for (int64_t p = 0; p < patch; ++p) {
                const float *col_row =
                    columns.data() + static_cast<size_t>(p * spatial);
                float acc = 0.0f;
                for (int64_t s = 0; s < spatial; ++s)
                    acc += dy_row[s] * col_row[s];
                dw_row[p] += acc;
            }
        }

        // dCols[p][s] = sum_oc W[oc][p] * dY[oc][s], then col2im.
        std::fill(col_grad.begin(), col_grad.end(), 0.0f);
        for (int64_t oc = 0; oc < spec_.out_channels; ++oc) {
            const float *dy_row = output_grad.data().data() +
                linearIndex(out_shape, output_grad.layout(), n, oc, 0, 0);
            const float *w_row = weights_.value.data() + oc * patch;
            for (int64_t p = 0; p < patch; ++p) {
                const float w = w_row[p];
                if (w == 0.0f)
                    continue;
                float *cg_row =
                    col_grad.data() + static_cast<size_t>(p * spatial);
                for (int64_t s = 0; s < spatial; ++s)
                    cg_row[s] += w * dy_row[s];
            }
        }
        col2im(col_grad, n, input_grad);
    }
    return input_grad;
}

std::vector<ParamBlob *>
Conv2D::params()
{
    return {&weights_, &bias_};
}

} // namespace cdma
