#include "compress/compressor.hh"

#include <algorithm>

#include "common/logging.hh"
#include "compress/deflate.hh"
#include "compress/rle.hh"
#include "compress/zvc.hh"

namespace cdma {

double
CompressedBuffer::ratio() const
{
    if (payload.empty())
        return 1.0;
    return static_cast<double>(original_bytes) /
        static_cast<double>(payload.size());
}

uint64_t
CompressedBuffer::effectiveBytes() const
{
    uint64_t total = 0;
    uint64_t remaining = original_bytes;
    for (uint32_t compressed : window_sizes) {
        const uint64_t raw = std::min<uint64_t>(remaining, window_bytes);
        total += std::min<uint64_t>(compressed, raw);
        remaining -= raw;
    }
    return total;
}

double
CompressedBuffer::effectiveRatio() const
{
    const uint64_t bytes = effectiveBytes();
    if (bytes == 0)
        return 1.0;
    return static_cast<double>(original_bytes) / static_cast<double>(bytes);
}

Compressor::Compressor(uint64_t window_bytes) : window_bytes_(window_bytes)
{
    CDMA_ASSERT(window_bytes > 0, "compression window must be positive");
}

CompressedBuffer
Compressor::compress(std::span<const uint8_t> input) const
{
    CompressedBuffer out;
    out.original_bytes = input.size();
    out.window_bytes = window_bytes_;

    for (uint64_t offset = 0; offset < input.size();
         offset += window_bytes_) {
        const uint64_t len =
            std::min<uint64_t>(window_bytes_, input.size() - offset);
        auto window = input.subspan(offset, len);
        auto compressed = compressWindow(window);
        out.window_sizes.push_back(
            static_cast<uint32_t>(compressed.size()));
        out.payload.insert(out.payload.end(), compressed.begin(),
                           compressed.end());
    }
    return out;
}

std::vector<uint8_t>
Compressor::decompress(const CompressedBuffer &buffer) const
{
    std::vector<uint8_t> out;
    out.reserve(buffer.original_bytes);

    uint64_t payload_offset = 0;
    uint64_t remaining = buffer.original_bytes;
    for (uint32_t size : buffer.window_sizes) {
        const uint64_t raw =
            std::min<uint64_t>(remaining, buffer.window_bytes);
        CDMA_ASSERT(payload_offset + size <= buffer.payload.size(),
                    "window payload overruns compressed buffer");
        std::span<const uint8_t> payload(
            buffer.payload.data() + payload_offset, size);
        auto window = decompressWindow(payload, raw);
        CDMA_ASSERT(window.size() == raw,
                    "decompressed window size %zu != expected %llu",
                    window.size(), static_cast<unsigned long long>(raw));
        out.insert(out.end(), window.begin(), window.end());
        payload_offset += size;
        remaining -= raw;
    }
    CDMA_ASSERT(remaining == 0, "compressed buffer missing %llu bytes",
                static_cast<unsigned long long>(remaining));
    return out;
}

double
Compressor::measureRatio(std::span<const uint8_t> input) const
{
    return compress(input).effectiveRatio();
}

std::string
algorithmName(Algorithm algorithm)
{
    switch (algorithm) {
      case Algorithm::Rle:  return "RL";
      case Algorithm::Zvc:  return "ZV";
      case Algorithm::Zlib: return "ZL";
    }
    panic("unreachable algorithm value %d", static_cast<int>(algorithm));
}

std::unique_ptr<Compressor>
makeCompressor(Algorithm algorithm, uint64_t window_bytes)
{
    switch (algorithm) {
      case Algorithm::Rle:
        return std::make_unique<RleCompressor>(window_bytes);
      case Algorithm::Zvc:
        return std::make_unique<ZvcCompressor>(window_bytes);
      case Algorithm::Zlib:
        return std::make_unique<DeflateCompressor>(window_bytes);
    }
    panic("unreachable algorithm value %d", static_cast<int>(algorithm));
}

} // namespace cdma
