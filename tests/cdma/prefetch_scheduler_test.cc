/**
 * @file
 * Tests for the async double-buffered prefetch pipeline: the
 * deterministic event timeline against the closed-form steady-state
 * model (pinned to 1e-9, including empty, single-window and
 * shards-vs-lanes edges), the general double-buffer recurrence on
 * mixed shard trains, real-bytes reconstruction through
 * decompressShards, and the engine/vdnn/step-sim surfaces that carry
 * PrefetchTiming.
 */

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "cdma/transfer_engine.hh"
#include "common/rng.hh"
#include "compress/parallel.hh"
#include "perf/step_sim.hh"
#include "vdnn/memory_manager.hh"

namespace cdma {
namespace {

/** ReLU-like fp32 words at the given density. */
std::vector<uint8_t>
makeInput(double density, size_t bytes, uint64_t seed)
{
    Rng rng(seed);
    std::vector<uint8_t> input(bytes, 0);
    const size_t words = bytes / 4;
    for (size_t i = 0; i < words; ++i) {
        if (density > 0.0 && rng.bernoulli(density)) {
            const float value =
                1.0f + static_cast<float>(std::abs(rng.normal()));
            std::memcpy(input.data() + i * 4, &value, 4);
        }
    }
    for (size_t i = words * 4; i < bytes; ++i)
        input[i] = static_cast<uint8_t>(1 + rng.uniformInt(255));
    return input;
}

CdmaEngine
makeEngine(unsigned lanes, uint64_t shard_bytes = 0,
           TimingMode mode = TimingMode::Overlapped)
{
    CdmaConfig config;
    config.compression.lanes = lanes;
    config.transfer.shard_bytes = shard_bytes;
    config.transfer.timing_mode = mode;
    return CdmaEngine(config);
}

/**
 * Reference recurrence for the prefetch pipeline with @p buffers
 * staging buffers: the wire is FIFO, the decompression engine is
 * serial, and shard k may not enter the wire until shard k - buffers
 * has been re-inflated.
 */
double
referenceMakespan(const std::vector<ShardTransfer> &shards,
                  double wire_bw, double decompress_bw, unsigned buffers)
{
    const size_t n = shards.size();
    std::vector<double> wire_end(n, 0.0), expand_end(n, 0.0);
    for (size_t k = 0; k < n; ++k) {
        double start = k > 0 ? wire_end[k - 1] : 0.0;
        if (k >= buffers)
            start = std::max(start, expand_end[k - buffers]);
        wire_end[k] =
            start + static_cast<double>(shards[k].wire_bytes) / wire_bw;
        const double expand_start = std::max(
            wire_end[k], k > 0 ? expand_end[k - 1] : 0.0);
        expand_end[k] = expand_start +
            static_cast<double>(shards[k].raw_bytes) / decompress_bw;
    }
    return n > 0 ? expand_end[n - 1] : 0.0;
}

TEST(PrefetchPipelineTiming, ClosedFormSteadyStateDecompressBound)
{
    // Uniform shards, decompression the slower stage (a fetch-capped
    // high-ratio layer): the makespan must equal one wire fill plus the
    // decompression engine at its full rate,
    //   overlapped = first_wire + n * decompress  ( = n*max + min ),
    // to 1e-9 relative error.
    const uint64_t raw = 1 << 20;
    const uint64_t wire_bytes = raw / 64; // 64x ratio: wire leg is short
    const double wire_bw = 12.8e9, decompress_bw = 200e9;
    const size_t n = 16;
    std::vector<ShardTransfer> shards(n, {raw, wire_bytes});

    const PrefetchTiming timing = PrefetchScheduler::pipelineTiming(
        shards, wire_bw, decompress_bw);
    const double w = static_cast<double>(wire_bytes) / wire_bw;
    const double d = static_cast<double>(raw) / decompress_bw;
    ASSERT_GT(d, w); // decompress-bound by construction
    const double closed_form = w + static_cast<double>(n) * d;
    EXPECT_NEAR(timing.overlapped_seconds, closed_form,
                1e-9 * closed_form);
    EXPECT_NEAR(timing.wire_seconds, static_cast<double>(n) * w,
                1e-9 * n * w);
    EXPECT_NEAR(timing.decompress_seconds, static_cast<double>(n) * d,
                1e-9 * n * d);
    // All but the pipeline-fill wire time hides under decompression.
    EXPECT_NEAR(timing.overlap_fraction,
                static_cast<double>(n - 1) / static_cast<double>(n), 1e-9);
}

TEST(PrefetchPipelineTiming, ClosedFormSteadyStateWireBound)
{
    // Wire the slower stage (ZV-class ratios on a slow link): the
    // decompression engine drains behind the wire,
    //   overlapped = n * wire + last_decompress.
    const uint64_t raw = 1 << 20;
    const double ratio = 4.0;
    const uint64_t wire_bytes = static_cast<uint64_t>(raw / ratio);
    const double wire_bw = 12.8e9, decompress_bw = 200e9;
    const size_t n = 12;
    std::vector<ShardTransfer> shards(n, {raw, wire_bytes});

    const PrefetchTiming timing = PrefetchScheduler::pipelineTiming(
        shards, wire_bw, decompress_bw);
    const double w = static_cast<double>(wire_bytes) / wire_bw;
    const double d = static_cast<double>(raw) / decompress_bw;
    ASSERT_GT(w, d); // wire-bound by construction
    const double closed_form = static_cast<double>(n) * w + d;
    EXPECT_NEAR(timing.overlapped_seconds, closed_form,
                1e-9 * closed_form);
    EXPECT_NEAR(timing.overlap_fraction,
                static_cast<double>(n - 1) / static_cast<double>(n), 1e-9);
}

TEST(PrefetchPipelineTiming, MatchesReferenceRecurrenceOnMixedShards)
{
    // Non-uniform shard trains and several staging depths: the DES must
    // reproduce the textbook recurrence exactly.
    Rng rng(505);
    std::vector<ShardTransfer> shards;
    for (int i = 0; i < 23; ++i) {
        const uint64_t raw = 4096 + 4096 * rng.uniformInt(16);
        shards.push_back({raw, raw / (1 + rng.uniformInt(8))});
    }
    for (unsigned buffers : {1u, 2u, 3u, 5u}) {
        const PrefetchTiming timing = PrefetchScheduler::pipelineTiming(
            shards, 12.8e9, 200e9, buffers);
        const double expected =
            referenceMakespan(shards, 12.8e9, 200e9, buffers);
        EXPECT_NEAR(timing.overlapped_seconds, expected, 1e-9 * expected)
            << buffers << " staging buffers";
        EXPECT_LE(timing.overlapped_seconds,
                  timing.serializedSeconds() + 1e-12);
        EXPECT_GE(timing.overlapped_seconds,
                  std::max(timing.wire_seconds,
                           timing.decompress_seconds) -
                      1e-12);
    }
}

TEST(PrefetchPipelineTiming, SingleShardHasNoOverlap)
{
    const std::vector<ShardTransfer> shards = {{4096, 1024}};
    const PrefetchTiming timing =
        PrefetchScheduler::pipelineTiming(shards, 12.8e9, 200e9);
    EXPECT_DOUBLE_EQ(timing.overlapped_seconds,
                     timing.serializedSeconds());
    EXPECT_DOUBLE_EQ(timing.overlap_fraction, 0.0);
    EXPECT_EQ(timing.shard_count, 1u);
}

TEST(PrefetchScheduler, ClosedFormModelMatchesDesReference)
{
    // modelFromRatio is the allocation-free closed form (n*max + min
    // plus the trailing partial shard, stages swapped relative to the
    // offload side); the DES (pipelineTiming) stays the reference. Pin
    // equality across transfer sizes that exercise every branch —
    // sub-shard, exact multiples, long trains, partial tails — ratios
    // on both sides of the fetch cap, and staging depths including the
    // degenerate single-buffer pipeline.
    for (const unsigned buffers : {1u, 2u, 3u}) {
        for (const uint64_t shard_bytes : {0ull, 4096ull, 3 * 4096ull}) {
            CdmaConfig config;
            config.transfer.shard_bytes = shard_bytes;
            config.transfer.staging_buffers = buffers;
            config.transfer.timing_mode = TimingMode::Overlapped;
            const CdmaEngine engine(config);
            const PrefetchScheduler scheduler(engine);
            const uint64_t shard_raw =
                scheduler.shardWindows() * config.compression.window_bytes;

            for (const double ratio : {1.0, 2.5, 7.3, 12.5, 40.0}) {
                for (const uint64_t raw :
                     {uint64_t{1}, shard_raw / 2, shard_raw,
                      shard_raw + 1, 3 * shard_raw,
                      7 * shard_raw + shard_raw / 3,
                      64 * shard_raw + 4097}) {
                    // The exact shard train the DES would replay.
                    std::vector<ShardTransfer> shards;
                    uint64_t remaining = raw;
                    while (remaining > 0) {
                        const uint64_t r = std::min(remaining, shard_raw);
                        shards.push_back(
                            {r, static_cast<uint64_t>(
                                    static_cast<double>(r) / ratio)});
                        remaining -= r;
                    }
                    const PrefetchTiming des =
                        PrefetchScheduler::pipelineTiming(
                            shards, config.gpu.pcie_effective_bandwidth,
                            config.gpu.comp_bandwidth, buffers);
                    const PrefetchTiming closed =
                        scheduler.modelFromRatio(raw, ratio);

                    EXPECT_EQ(closed.shard_count, des.shard_count)
                        << "raw=" << raw << " ratio=" << ratio
                        << " buffers=" << buffers;
                    EXPECT_NEAR(closed.wire_seconds, des.wire_seconds,
                                1e-9 * std::max(des.wire_seconds, 1e-30));
                    EXPECT_NEAR(closed.decompress_seconds,
                                des.decompress_seconds,
                                1e-9 * des.decompress_seconds);
                    EXPECT_NEAR(closed.overlapped_seconds,
                                des.overlapped_seconds,
                                1e-9 * des.overlapped_seconds)
                        << "raw=" << raw << " ratio=" << ratio
                        << " buffers=" << buffers
                        << " shard_raw=" << shard_raw;
                    EXPECT_NEAR(closed.overlap_fraction,
                                des.overlap_fraction, 1e-9);
                }
            }
        }
    }

    // Zero-byte transfer: both paths report an empty pipeline.
    const CdmaEngine engine = makeEngine(1);
    const PrefetchTiming empty =
        PrefetchScheduler(engine).modelFromRatio(0, 2.0);
    EXPECT_EQ(empty.shard_count, 0u);
    EXPECT_DOUBLE_EQ(empty.overlapped_seconds, 0.0);
}

TEST(PrefetchScheduler, ZeroByteBuffer)
{
    const CdmaEngine engine = makeEngine(4);
    const PrefetchScheduler scheduler(engine);
    const CompressedBuffer empty =
        engine.compressor().serial().compress({});
    const PrefetchResult result = scheduler.prefetch(empty).value();
    EXPECT_TRUE(result.data.empty());
    EXPECT_EQ(result.shards.size(), 0u);
    EXPECT_EQ(result.timing.shard_count, 0u);
    EXPECT_DOUBLE_EQ(result.timing.overlapped_seconds, 0.0);
}

TEST(PrefetchScheduler, SingleWindowBuffer)
{
    const CdmaEngine engine = makeEngine(4);
    const PrefetchScheduler scheduler(engine);
    const auto input = makeInput(0.5, 1000, 17);
    const CompressedBuffer compressed =
        engine.compressor().serial().compress(input);
    const PrefetchResult result = scheduler.prefetch(compressed).value();
    ASSERT_EQ(result.shards.size(), 1u);
    EXPECT_EQ(result.shards[0].raw_bytes, input.size());
    EXPECT_EQ(result.shards[0].wire_bytes, compressed.effectiveBytes());
    EXPECT_DOUBLE_EQ(result.timing.overlap_fraction, 0.0);
    EXPECT_EQ(result.data, input);
}

TEST(PrefetchScheduler, RoundTripsTheOffloadAcrossShardAndLaneShapes)
{
    // Offload then prefetch, shards > lanes and lanes > shards: the
    // restored bytes must equal the original, the prefetch shard train
    // must mirror the offload's, and timing must not depend on lane
    // count.
    const auto input = makeInput(0.4, (1 << 20) + 123, 29);
    const CdmaEngine two_lanes = makeEngine(2);
    const CdmaEngine eight_lanes = makeEngine(8, /*shard_bytes=*/4096);

    for (const CdmaEngine *engine : {&two_lanes, &eight_lanes}) {
        const OffloadResult offloaded =
            OffloadScheduler(*engine).offload(input);
        const PrefetchResult restored =
            PrefetchScheduler(*engine).prefetch(offloaded.buffer).value();
        EXPECT_EQ(restored.data, input);
        ASSERT_EQ(restored.shards.size(), offloaded.shards.size());
        for (size_t i = 0; i < restored.shards.size(); ++i) {
            EXPECT_EQ(restored.shards[i].raw_bytes,
                      offloaded.shards[i].raw_bytes);
            EXPECT_EQ(restored.shards[i].wire_bytes,
                      offloaded.shards[i].wire_bytes);
        }
    }

    const PrefetchResult serial = PrefetchScheduler(makeEngine(1))
        .prefetch(OffloadScheduler(makeEngine(1)).offload(input).buffer)
        .value();
    const PrefetchResult parallel = PrefetchScheduler(eight_lanes)
        .prefetch(OffloadScheduler(makeEngine(8)).offload(input).buffer)
        .value();
    EXPECT_EQ(serial.data, parallel.data);
}

TEST(PrefetchScheduler, DeterministicEventTimeline)
{
    const CdmaEngine engine = makeEngine(0); // all hardware threads
    const auto input = makeInput(0.5, (1 << 20) + 4096, 41);
    const CompressedBuffer compressed =
        OffloadScheduler(engine).offload(input).buffer;
    const PrefetchScheduler scheduler(engine);
    const PrefetchResult a = scheduler.prefetch(compressed).value();
    const PrefetchResult b = scheduler.prefetch(compressed).value();
    EXPECT_EQ(a.timing.overlapped_seconds, b.timing.overlapped_seconds);
    EXPECT_EQ(a.timing.wire_seconds, b.timing.wire_seconds);
    EXPECT_EQ(a.timing.decompress_seconds, b.timing.decompress_seconds);
    EXPECT_EQ(a.data, b.data);
}

TEST(CdmaEngine, OverlappedPlansCarryBothPipelineDirections)
{
    const CdmaEngine engine = makeEngine(2);
    // Exact multiple of the staging shard: a uniform train, where the
    // mirrored pipelines' makespans coincide exactly (a partial tail
    // breaks the symmetry by one sub-shard fill).
    const uint64_t shard_raw = PrefetchScheduler(engine).shardWindows() *
        engine.config().compression.window_bytes;
    const uint64_t raw = 96 * shard_raw;
    const TransferPlan plan = engine.planFromRatio("map", raw, 2.5);

    EXPECT_GT(plan.prefetch.shard_count, 1u);
    EXPECT_EQ(plan.prefetch.shard_count, plan.offload.shard_count);
    EXPECT_GT(plan.prefetch.overlap_fraction, 0.0);
    EXPECT_LE(plan.prefetch.overlap_fraction, 1.0);
    // Same shards, mirrored stages: leg totals swap roles.
    EXPECT_NEAR(plan.prefetch.wire_seconds, plan.offload.wire_seconds,
                1e-12);
    EXPECT_NEAR(plan.prefetch.decompress_seconds,
                plan.offload.compress_seconds, 1e-12);
    EXPECT_NEAR(plan.prefetch.overlapped_seconds,
                plan.offload.overlapped_seconds,
                1e-9 * plan.offload.overlapped_seconds);

    // The engine's plan must agree with the scheduler's analytic model.
    const PrefetchTiming direct =
        PrefetchScheduler(engine).modelFromRatio(raw, 2.5);
    EXPECT_DOUBLE_EQ(plan.prefetch.overlapped_seconds,
                     direct.overlapped_seconds);

    // Real-bytes planning models the prefetch over the measured shards.
    const auto input = makeInput(0.25, 1 << 20, 47);
    const TransferPlan real = engine.planTransfer("real", input);
    const OffloadResult offloaded = OffloadScheduler(engine).offload(input);
    const PrefetchTiming expected = PrefetchScheduler::pipelineTiming(
        offloaded.shards, engine.config().gpu.pcie_effective_bandwidth,
        engine.config().gpu.comp_bandwidth,
        engine.config().transfer.staging_buffers);
    EXPECT_DOUBLE_EQ(real.prefetch.overlapped_seconds,
                     expected.overlapped_seconds);

    // CompressionFree keeps the seed model: no prefetch breakdown.
    const CdmaEngine free_engine =
        makeEngine(2, 0, TimingMode::CompressionFree);
    const TransferPlan free_plan =
        free_engine.planFromRatio("map", raw, 2.5);
    EXPECT_EQ(free_plan.prefetch.shard_count, 0u);
    EXPECT_DOUBLE_EQ(free_plan.prefetch.overlapped_seconds, 0.0);

    // Disabled compression bypasses both pipeline models.
    CdmaConfig disabled;
    disabled.compression.enabled = false;
    disabled.transfer.timing_mode = TimingMode::Overlapped;
    const TransferPlan raw_plan =
        CdmaEngine(disabled).planFromRatio("raw", raw, 3.0);
    EXPECT_EQ(raw_plan.prefetch.shard_count, 0u);
}

TEST(VdnnMemoryManager, PlannedPrefetchesUseThePrefetchPipeline)
{
    const NetworkDesc net = allNetworkDescs().front();
    const VdnnMemoryManager manager(net, 16);
    const CdmaEngine engine = makeEngine(1);

    std::vector<double> ratios(net.layers.size(), 2.0);
    const auto offloads = manager.plannedOffloads(engine, ratios);
    const auto prefetches = manager.plannedPrefetches(engine, ratios);
    ASSERT_EQ(prefetches.size(), offloads.size());
    for (size_t k = 0; k < prefetches.size(); ++k) {
        // Reverse order, retimed to the prefetch makespan.
        const TransferPlan &off = offloads[offloads.size() - 1 - k];
        const TransferPlan &pre = prefetches[k];
        EXPECT_EQ(pre.label, off.label);
        EXPECT_GT(pre.prefetch.shard_count, 0u);
        EXPECT_DOUBLE_EQ(pre.seconds, pre.prefetch.overlapped_seconds);
    }

    // The raw-DMA (vDNN baseline) flavour keeps plain occupancy.
    const auto raw_prefetches =
        manager.plannedPrefetches(engine, {}, /*raw_dma=*/true);
    for (const auto &plan : raw_prefetches) {
        EXPECT_EQ(plan.prefetch.shard_count, 0u);
        EXPECT_DOUBLE_EQ(plan.seconds,
                         engine.transferSeconds(plan.raw_bytes, 1.0));
    }
}

TEST(StepSimulator, BackwardLegWaitsOnThePrefetchPipeline)
{
    const NetworkDesc net = allNetworkDescs().front();
    const VdnnMemoryManager manager(net, 16);
    PerfModel perf;

    CdmaConfig config;
    config.transfer.timing_mode = TimingMode::Overlapped;
    const CdmaEngine engine(config);
    const StepSimulator sim(manager, engine, perf, CudnnVersion::V5);

    std::vector<double> ratios(net.layers.size(), 2.0);
    const StepResult result = sim.run(StepMode::Cdma, ratios);
    bool saw_prefetch = false;
    for (const auto &layer : result.layers) {
        if (layer.offload.shard_count == 0)
            continue;
        saw_prefetch = true;
        EXPECT_GT(layer.prefetch.shard_count, 0u) << layer.label;
        EXPECT_DOUBLE_EQ(layer.prefetch_seconds,
                         layer.prefetch.overlapped_seconds)
            << layer.label;
    }
    EXPECT_TRUE(saw_prefetch);

    // vDNN mode (raw DMA) prices both directions identically.
    const StepResult vdnn = sim.run(StepMode::Vdnn);
    for (const auto &layer : vdnn.layers) {
        EXPECT_EQ(layer.prefetch.shard_count, 0u);
        EXPECT_DOUBLE_EQ(layer.prefetch_seconds, layer.offload_seconds);
    }
}

} // namespace
} // namespace cdma
