/**
 * @file
 * Shared infrastructure for the figure/table reproduction harnesses:
 * aligned table printing, and measurement of per-layer compression ratios
 * on synthetic full-size activation data (generator + density schedule).
 */

#ifndef CDMA_BENCH_COMMON_HARNESS_HH
#define CDMA_BENCH_COMMON_HARNESS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "compress/compressor.hh"
#include "dnn/trainer.hh"
#include "models/desc.hh"
#include "models/scaled.hh"
#include "sparsity/generator.hh"
#include "sparsity/schedule.hh"
#include "tensor/layout.hh"

namespace cdma::bench {

/** Minimal aligned-column table printer for harness output. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Append one row (stringified cells). */
    void addRow(std::vector<std::string> cells);

    /** Format a double with @p precision digits after the point. */
    static std::string num(double value, int precision = 3);

    /** Render to stdout. */
    void print() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Per-layer compression measurement on synthetic activations. */
struct LayerRatioResult {
    std::string name;
    uint64_t full_bytes = 0; ///< actual offloaded bytes (batch applied)
    double density = 0.0;
    double ratio = 1.0;      ///< effective (store-raw floored)
};

/** Network-level aggregate of a ratio sweep. */
struct NetworkRatioResult {
    double average = 1.0; ///< weighted by offloaded bytes (Fig. 11 rule)
    double max = 1.0;     ///< max per-layer ratio
    std::vector<LayerRatioResult> layers;
};

/** Configuration of the ratio measurement. */
struct RatioMeasureConfig {
    double training_progress = 1.0; ///< t for the density schedule
    uint64_t window_bytes = 4096;
    int64_t sample_batch = 4;       ///< N used for generated data
    /** Element cap per generated layer sample (memory/time guard). */
    int64_t max_elements = 1 << 21;
    uint64_t seed = 1234;
};

/**
 * Measure compression ratios of every ReLU-bearing layer of @p network
 * under @p algorithm and @p layout. Layers larger than the element cap
 * are sampled by generating a channel subset at full spatial extent (the
 * per-byte ratio is channel-subsampling invariant); weights in the
 * average still use the full layer size.
 */
NetworkRatioResult
measureNetworkRatios(const NetworkDesc &network, Algorithm algorithm,
                     Layout layout, const RatioMeasureConfig &config = {});

/**
 * Like measureNetworkRatios() but sampled at several training
 * checkpoints, the way the paper's Figure 11 measurement spans the whole
 * training process: `average` is the mean over checkpoints of the
 * byte-weighted network ratio, `max` the maximum per-layer ratio over
 * all checkpoints, and `layers` the trained-model (last checkpoint)
 * per-layer results.
 */
NetworkRatioResult
measureTimeAveragedRatios(const NetworkDesc &network, Algorithm algorithm,
                          Layout layout,
                          const std::vector<double> &checkpoints =
                              {0.35, 0.65, 1.0},
                          const RatioMeasureConfig &config = {});

/** Configuration of a scaled-network training run. */
struct ScaledRunConfig {
    int iterations = 240;
    int64_t batch = 16;
    int snapshots = 10; ///< density/loss samples across the run
    uint64_t seed = 7;
};

/** Result of a scaled-network training run. */
struct ScaledRun {
    std::vector<TrainSnapshot> snapshots;
    double val_accuracy = 0.0;
    uint64_t params = 0;
};

/**
 * Train the scaled variant of @p name (AlexNet/OverFeat/NiN/VGG/
 * SqueezeNet/GoogLeNet) on the synthetic dataset and return the sampled
 * trajectory — the measurement behind Figures 4-7 and Table I.
 */
ScaledRun trainScaledNetwork(const std::string &name,
                             const ScaledRunConfig &config = {});

/** Parse "iterations [batch]" CLI overrides into @p config. */
void parseTrainArgs(int argc, char **argv, ScaledRunConfig &config);

} // namespace cdma::bench

#endif // CDMA_BENCH_COMMON_HARNESS_HH
