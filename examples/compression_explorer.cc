/**
 * @file
 * Example: explore *why* each codec performs the way it does on
 * activation data. Sweeps activation density, reports zero-run
 * statistics (the clustering Figure 5 shows visually) and per-window
 * ratio distributions for RLE / ZVC / zlib under NCHW and NHWC — the
 * microscope view behind Figure 11.
 *
 * Run: ./build/examples/compression_explorer
 */

#include <cstdio>

#include "common/rng.hh"
#include "compress/analysis.hh"
#include "sparsity/generator.hh"

using namespace cdma;

int
main()
{
    ActivationGenerator generator;
    const Shape4D shape{2, 32, 64, 64};

    std::printf("%-8s %-7s %-9s %-8s | %-18s %-18s %-18s\n", "density",
                "layout", "mean run", "cluster", "RL mean/min/max",
                "ZV mean/min/max", "ZL mean/min/max");

    for (double density : {0.2, 0.4, 0.6}) {
        for (Layout layout : {Layout::NCHW, Layout::NHWC}) {
            Rng rng(42); // same logical data across layouts
            const Tensor4D data =
                generator.generate(shape, layout, density, rng);
            const RunStats runs = analyzeRuns(data.rawBytes());

            std::printf("%-8.1f %-7s %-9.1f %-8.1f |", density,
                        layoutName(layout).c_str(), runs.mean_zero_run,
                        runs.clusteringIndex());
            for (Algorithm algorithm : kAllAlgorithms) {
                const WindowProfile profile =
                    profileWindows(algorithm, data.rawBytes());
                std::printf(" %5.2f/%5.2f/%6.2f ", profile.mean_ratio,
                            profile.min_ratio, profile.max_ratio);
            }
            std::printf("\n");
        }
    }

    std::printf("\nReading the table:\n");
    std::printf(" - 'cluster' is mean zero-run length vs an i.i.d. "
                "stream: NCHW keeps Figure 5's spatial clusters "
                "contiguous (index >> 1), NHWC interleaves channels and "
                "destroys them (index ~1).\n");
    std::printf(" - RLE's ratio collapses exactly when the cluster "
                "index does; ZVC's column is identical across layouts "
                "(mask-based, placement-blind); zlib tracks RLE's "
                "structure but recovers value redundancy too.\n");
    return 0;
}
