/**
 * @file
 * Section V-C ablation: DMA staging-buffer occupancy. Replays per-line
 * ZVC compressed sizes of synthetic activations at several densities
 * through the fetch/drain pipeline and reports the peak buffer occupancy
 * against the bandwidth-delay sizing rule (200 GB/s x 350 ns = 70 KB),
 * plus the sizing rule's sensitivity to the fetch-bandwidth provisioning.
 */

#include <cstdio>

#include "common/rng.hh"
#include "common/harness.hh"
#include "compress/zvc.hh"
#include "gpu/dma_buffer.hh"
#include "sparsity/generator.hh"

using namespace cdma;
using bench::Table;

namespace {

/** Per-128B-line ZVC sizes of a synthetic activation buffer. */
std::vector<uint32_t>
lineSizes(double density, uint64_t seed)
{
    ActivationGenerator gen;
    Rng rng(seed);
    const Tensor4D data = gen.generate(Shape4D{1, 64, 128, 128},
                                       Layout::NCHW, density, rng);
    ZvcCompressor zvc(128);
    const auto compressed = zvc.compress(data.rawBytes());
    std::vector<uint32_t> sizes;
    sizes.reserve(compressed.window_sizes.size());
    for (uint32_t s : compressed.window_sizes)
        sizes.push_back(std::min<uint32_t>(s, 128));
    return sizes;
}

} // namespace

int
main()
{
    std::printf("== Ablation: DMA buffer occupancy vs activation density "
                "==\n");
    DmaBufferModel model;
    std::printf("bandwidth-delay sizing rule: %llu bytes (paper: 70 KB)\n\n",
                static_cast<unsigned long long>(
                    model.requiredBufferBytes()));

    Table table({"density", "peak occupancy (KB)", "fraction of 70KB",
                 "PCIe busy"});
    for (double density : {0.0, 0.1, 0.3, 0.5, 0.7, 0.9, 1.0}) {
        const auto stats = model.replay(lineSizes(density, 42));
        table.addRow({
            Table::num(density, 1),
            Table::num(static_cast<double>(stats.peak_occupancy_bytes) /
                           1024.0, 1),
            Table::num(static_cast<double>(stats.peak_occupancy_bytes) /
                           static_cast<double>(
                               model.requiredBufferBytes()), 2),
            Table::num(stats.pcie_busy_fraction, 2),
        });
    }
    table.print();

    std::printf("\n== Sizing rule vs fetch-bandwidth provisioning "
                "(incompressible stream) ==\n");
    Table sweep({"fetch BW (GB/s)", "rule (KB)", "peak measured (KB)"});
    const std::vector<uint32_t> dense(16384, 128);
    for (double fetch : {50.0, 100.0, 200.0, 336.0}) {
        DmaBufferConfig config;
        config.fetch_bandwidth = fetch * 1e9;
        DmaBufferModel m(config);
        const auto stats = m.replay(dense);
        sweep.addRow({
            Table::num(fetch, 0),
            Table::num(static_cast<double>(m.requiredBufferBytes()) /
                           1024.0, 1),
            Table::num(static_cast<double>(stats.peak_occupancy_bytes) /
                           1024.0, 1),
        });
    }
    sweep.print();
    return 0;
}
