/**
 * @file
 * LSB-first bit stream reader/writer used by the DEFLATE-style codec.
 * Bits are packed into bytes starting at the least-significant bit, the
 * same convention as RFC 1951. The writer batches bits in a 64-bit
 * accumulator and can append directly into a caller-owned vector so whole
 * compressed windows stream into a shared payload without an intermediate
 * buffer; the reader fetches up to 64 bits per load instead of looping
 * bit-by-bit.
 */

#ifndef CDMA_COMPRESS_BITSTREAM_HH
#define CDMA_COMPRESS_BITSTREAM_HH

#include <cstdint>
#include <span>

#include "common/bytes.hh"

namespace cdma {

/** Append-only LSB-first bit writer. */
class BitWriter
{
  public:
    /** Write into an internally owned buffer (retrieved via finish()). */
    BitWriter() : sink_(&own_bytes_) {}

    /**
     * Append to @p sink in place (bytes already present are preserved).
     * Call flush() when done; finish() is reserved for the owning mode.
     */
    explicit BitWriter(ByteVec &sink) : sink_(&sink) {}

    /** Append the low @p count bits of @p bits (LSB first). */
    void put(uint32_t bits, int count);

    /** Pad the final partial byte with zero bits and emit it. */
    void flush();

    /** flush() and return the internally owned buffer. */
    ByteVec finish();

    /** Bits written so far. */
    uint64_t bitCount() const { return bit_count_; }

  private:
    ByteVec own_bytes_;
    ByteVec *sink_;
    uint64_t acc_ = 0;   ///< pending bits, LSB first
    int acc_bits_ = 0;   ///< number of pending bits (< 8 between calls)
    uint64_t bit_count_ = 0;
};

/**
 * LSB-first bit reader over a byte span. Reading past the end is a
 * recoverable condition, not a panic: the stream may be a truncated or
 * corrupted wire payload. An overrunning get() returns zero bits and
 * latches overrun(); decode loops are bounded by construction, so the
 * caller checks the flag at its convenience and reports Truncated.
 */
class BitReader
{
  public:
    explicit BitReader(std::span<const uint8_t> bytes);

    /**
     * Read @p count bits (LSB first). Past the end of the stream the
     * read returns 0 and latches overrun() instead of terminating: a
     * truncated payload is data, not an internal invariant.
     */
    uint32_t get(int count);

    /** Read a single bit. */
    uint32_t getBit() { return get(1); }

    /** Bits consumed so far. */
    uint64_t bitPosition() const { return bit_pos_; }

    /** True when fewer than @p count bits remain. */
    bool exhausted(int count = 1) const;

    /** True once any get() has run past the end of the stream. */
    bool overrun() const { return overrun_; }

  private:
    std::span<const uint8_t> bytes_;
    uint64_t bit_pos_ = 0;
    bool overrun_ = false;
};

} // namespace cdma

#endif // CDMA_COMPRESS_BITSTREAM_HH
