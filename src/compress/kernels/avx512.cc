/**
 * @file
 * AVX-512 kernel backend. The ZVC primitives stop simulating the
 * hardware shift network and *use* it: `vpcompressd` performs the
 * mask-driven left-pack of a 16-word sub-block in one instruction (no
 * shuffle table — the 2 KB AVX2 lookup disappears), and `vpexpandd` is
 * its exact inverse for the prefetch-side scatter, with the masked
 * expand-load keeping every access inside the live payload bytes.
 * Mask formation is `vptestmd`/`vpcmpeqd` into mask registers (no
 * movemask round trip through the integer file), run scans and match
 * extension stride 64 bytes per probe with a mask-register test
 * (`kortest`) as the early exit, and the byte-sink ops use unaligned
 * 512-bit loads/stores with a scalar tail. Sub-16-word tails ride
 * masked loads/stores instead of scalar loops, so even a 9-word group
 * is a single masked op.
 *
 * Compiled with per-function target attributes so the translation unit
 * builds on any x86-64 toolchain regardless of -march; whether the code
 * ever runs is a CPUID decision made in dispatch.cc (AVX512F for the
 * dword ops, AVX512BW for the byte-granular compares).
 *
 * Output contract: byte-identical to the scalar backend for every op.
 */

#include "compress/kernels/kernels.hh"

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include <bit>
#include <cstring>

namespace cdma {

namespace {

#define CDMA_AVX512 __attribute__((target("avx512f,avx512bw,avx512vl")))

CDMA_AVX512 uint32_t
zvcCompactGroupAvx512(const uint8_t *src, uint32_t words, uint8_t *dst)
{
    uint32_t mask = 0;
    uint32_t w = 0;
    while (w + 16 <= words) {
        const __m512i v = _mm512_loadu_si512(src + w * 4);
        // vptestmd: one instruction from vector to non-zero lane mask —
        // no compare-and-movemask round trip.
        const __mmask16 nz = _mm512_test_epi32_mask(v, v);
        // All-zero sub-blocks (the common case in sparse activation
        // pages) emit nothing and skip the store entirely.
        if (nz != 0) {
            // vpcompressd: the hardware left-pack. Exactly
            // 4 * popcount(nz) bytes are written, so the write pointer
            // never lags — no scratch headroom consumed at all.
            _mm512_mask_compressstoreu_epi32(dst, nz, v);
            dst += 4u * static_cast<uint32_t>(
                std::popcount(static_cast<uint32_t>(nz)));
            mask |= static_cast<uint32_t>(nz) << w;
        }
        w += 16;
    }
    // Sub-block tail (1..15 words): one masked load keeps the read
    // inside the group, then the same testm + compress-store sequence.
    if (w < words) {
        const __mmask16 live = static_cast<__mmask16>(
            (1u << (words - w)) - 1u);
        const __m512i v = _mm512_maskz_loadu_epi32(live, src + w * 4);
        const __mmask16 nz = _mm512_test_epi32_mask(v, v);
        if (nz != 0) {
            _mm512_mask_compressstoreu_epi32(dst, nz, v);
            mask |= static_cast<uint32_t>(nz) << w;
        }
    }
    return mask;
}

CDMA_AVX512 uint32_t
zvcExpandGroupAvx512(const uint8_t *src, uint32_t mask, uint32_t words,
                     uint8_t *dst)
{
    size_t consumed = 0;
    uint32_t w = 0;
    while (w + 16 <= words) {
        const __mmask16 m =
            static_cast<__mmask16>((mask >> w) & 0xFFFFu);
        // Full sub-blocks (the whole page at 100% density, most of it
        // anywhere dense) need no expansion at all — a plain 64-byte
        // copy beats vpexpandd's cross-lane routing there.
        if (m == 0xFFFFu) {
            _mm512_storeu_si512(dst + w * 4,
                                _mm512_loadu_si512(src + consumed));
            consumed += 64;
            w += 16;
            continue;
        }
        // vpexpandd with a zeroing mask is the whole scatter: payload
        // words route to their mask positions, clear lanes become the
        // zeros. The expand-load touches exactly the 4 * popcount(m)
        // live payload bytes (disabled lanes are never accessed), which
        // is precisely what the payload-boundary contract allows.
        const __m512i scattered =
            _mm512_maskz_expandloadu_epi32(m, src + consumed);
        _mm512_storeu_si512(dst + w * 4, scattered);
        consumed += 4u * static_cast<uint32_t>(
            std::popcount(static_cast<uint32_t>(m)));
        w += 16;
    }
    // Sub-block tail (1..15 words): bits of mask at or above words are
    // clear by contract, so the same expand-load stays inside the live
    // payload; the store is masked to the group's words.
    if (w < words) {
        const __mmask16 live = static_cast<__mmask16>(
            (1u << (words - w)) - 1u);
        const __mmask16 m = static_cast<__mmask16>(mask >> w);
        const __m512i scattered =
            _mm512_maskz_expandloadu_epi32(m, src + consumed);
        _mm512_mask_storeu_epi32(dst + w * 4, live, scattered);
        consumed += 4u * static_cast<uint32_t>(
            std::popcount(static_cast<uint32_t>(m)));
    }
    return static_cast<uint32_t>(consumed);
}

CDMA_AVX512 uint64_t
zeroRunWordsAvx512(const uint8_t *words, uint64_t limit)
{
    uint64_t run = 0;
    while (run + 16 <= limit) {
        const __m512i v = _mm512_loadu_si512(words + run * 4);
        // vptestmd + kortest: the mask-register test is the early exit,
        // and the same mask pinpoints the first non-zero word.
        const __mmask16 nz = _mm512_test_epi32_mask(v, v);
        if (nz != 0) {
            return run + static_cast<uint64_t>(
                std::countr_zero(static_cast<uint32_t>(nz)));
        }
        run += 16;
    }
    if (run < limit) {
        const __mmask16 live = static_cast<__mmask16>(
            (1u << (limit - run)) - 1u);
        const __m512i v =
            _mm512_maskz_loadu_epi32(live, words + run * 4);
        const __mmask16 nz = _mm512_test_epi32_mask(v, v);
        if (nz != 0) {
            return run + static_cast<uint64_t>(
                std::countr_zero(static_cast<uint32_t>(nz)));
        }
    }
    return limit;
}

CDMA_AVX512 uint64_t
literalRunWordsAvx512(const uint8_t *words, uint64_t limit)
{
    const __m512i zero = _mm512_setzero_si512();
    uint64_t run = 0;
    while (run + 16 <= limit) {
        const __m512i v = _mm512_loadu_si512(words + run * 4);
        const __mmask16 zm = _mm512_cmpeq_epi32_mask(v, zero);
        if (zm != 0) {
            return run + static_cast<uint64_t>(
                std::countr_zero(static_cast<uint32_t>(zm)));
        }
        run += 16;
    }
    if (run < limit) {
        const __mmask16 live = static_cast<__mmask16>(
            (1u << (limit - run)) - 1u);
        const __m512i v =
            _mm512_maskz_loadu_epi32(live, words + run * 4);
        // Compare only the live lanes: the zeroed disabled lanes would
        // otherwise read as (phantom) zero words past the limit.
        const __mmask16 zm =
            _mm512_mask_cmpeq_epi32_mask(live, v, zero);
        if (zm != 0) {
            return run + static_cast<uint64_t>(
                std::countr_zero(static_cast<uint32_t>(zm)));
        }
    }
    return limit;
}

CDMA_AVX512 size_t
matchLengthAvx512(const uint8_t *a, const uint8_t *b, size_t max)
{
    size_t len = 0;
    while (len + 64 <= max) {
        const __m512i x = _mm512_loadu_si512(a + len);
        const __m512i y = _mm512_loadu_si512(b + len);
        // vpcmpb into a 64-bit mask register; kortest is the all-equal
        // early exit and countr_zero the first-diverging byte.
        const __mmask64 neq = _mm512_cmpneq_epi8_mask(x, y);
        if (neq != 0) {
            return len + static_cast<size_t>(
                std::countr_zero(static_cast<uint64_t>(neq)));
        }
        len += 64;
    }
    if (len < max) {
        const __mmask64 live =
            (~static_cast<uint64_t>(0)) >> (64 - (max - len));
        const __m512i x = _mm512_maskz_loadu_epi8(live, a + len);
        const __m512i y = _mm512_maskz_loadu_epi8(live, b + len);
        const __mmask64 neq = _mm512_mask_cmpneq_epi8_mask(live, x, y);
        if (neq != 0) {
            return len + static_cast<size_t>(
                std::countr_zero(static_cast<uint64_t>(neq)));
        }
    }
    return max;
}

/**
 * Above this size the libc memcpy/memset (rep-movs/ERMS fast strings on
 * modern x86) beats an explicit vector loop; below it the vector loop
 * skips the libc dispatch and ERMS startup cost. Same threshold the
 * AVX2 backend settled on — the crossover is a property of the string
 * hardware, not the vector width.
 */
constexpr size_t kBulkLibcBytes = 2048;

CDMA_AVX512 void
copyBytesAvx512(uint8_t *dst, const uint8_t *src, size_t n)
{
    // One unaligned 512-bit load/store pair per 64 bytes for the
    // literal-run / raw-tail sizes the codecs emit; small tails stay
    // with memcpy (inlined moves) and page-class runs go back to libc's
    // fast-string path.
    if (n >= kBulkLibcBytes) {
        std::memcpy(dst, src, n);
        return;
    }
    size_t i = 0;
    while (i + 64 <= n) {
        _mm512_storeu_si512(dst + i, _mm512_loadu_si512(src + i));
        i += 64;
    }
    if (i < n)
        std::memcpy(dst + i, src + i, n - i);
}

CDMA_AVX512 void
zeroFillBytesAvx512(uint8_t *dst, size_t n)
{
    // 64-byte zero stores for the run-reconstruction sizes the codecs
    // emit; small fills stay with memset and page-class zero runs go
    // back to libc's fast-string path.
    if (n >= kBulkLibcBytes) {
        std::memset(dst, 0, n);
        return;
    }
    const __m512i zero = _mm512_setzero_si512();
    size_t i = 0;
    while (i + 64 <= n) {
        _mm512_storeu_si512(dst + i, zero);
        i += 64;
    }
    if (i < n)
        std::memset(dst + i, 0, n - i);
}

#undef CDMA_AVX512

} // namespace

const KernelOps *
avx512Kernels()
{
    // F covers the dword compress/expand/test ops, BW the byte-granular
    // match compare, VL the EVEX forms the compiler may pick for
    // intermediates. Every such part also has AVX2+SSE4.2, so the
    // hardware CRC32C is shared with the AVX2 table — it is the same
    // instruction either way.
    static const bool supported = __builtin_cpu_supports("avx512f") &&
        __builtin_cpu_supports("avx512bw") &&
        __builtin_cpu_supports("avx512vl") && avx2Kernels() != nullptr;
    if (!supported)
        return nullptr;
    static const KernelOps ops = {
        "avx512",
        zvcCompactGroupAvx512,
        zvcExpandGroupAvx512,
        zeroRunWordsAvx512,
        literalRunWordsAvx512,
        matchLengthAvx512,
        copyBytesAvx512,
        zeroFillBytesAvx512,
        avx2Kernels()->crc32,
    };
    return &ops;
}

} // namespace cdma

#else // !x86

namespace cdma {

const KernelOps *
avx512Kernels()
{
    return nullptr;
}

} // namespace cdma

#endif
