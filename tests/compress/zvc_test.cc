/** @file Unit tests for zero-value compression (Figure 8 semantics). */

#include <algorithm>
#include <cstring>

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "compress/zvc.hh"

namespace cdma {
namespace {

std::vector<uint8_t>
wordsToBytes(const std::vector<float> &words)
{
    std::vector<uint8_t> bytes(words.size() * 4);
    std::memcpy(bytes.data(), words.data(), bytes.size());
    return bytes;
}

TEST(Zvc, AllZeroWindowCompresses32x)
{
    // 32 zero words (128 B) -> one 4 B mask: the paper's 32x best case.
    const std::vector<float> words(32, 0.0f);
    ZvcCompressor zvc;
    const auto result = zvc.compress(wordsToBytes(words));
    EXPECT_EQ(result.compressedBytes(), 4u);
    EXPECT_DOUBLE_EQ(result.ratio(), 32.0);
}

TEST(Zvc, AllDenseWindowHasMaskOverheadOnly)
{
    // 32 dense words -> 4 B mask + 128 B payload: 3.1% metadata overhead.
    std::vector<float> words(32, 1.0f);
    ZvcCompressor zvc;
    const auto result = zvc.compress(wordsToBytes(words));
    EXPECT_EQ(result.compressedBytes(), 4u + 128u);
    EXPECT_NEAR(result.ratio(), 128.0 / 132.0, 1e-12);
}

TEST(Zvc, SixtyPercentZerosGivesRoughly2Point5x)
{
    // Section V-A: "If 60% of the total activations are zero-valued, we
    // would expect an overall compression ratio of 2.5x."
    Rng rng(17);
    std::vector<float> words(1 << 16);
    for (auto &w : words)
        w = rng.bernoulli(0.6) ? 0.0f : 1.0f + static_cast<float>(
            rng.uniform());
    ZvcCompressor zvc;
    const double ratio = zvc.measureRatio(wordsToBytes(words));
    // 1 / (0.4 + 1/32) = 2.32; the paper's 2.5x quote ignores the mask.
    EXPECT_NEAR(ratio, 1.0 / (0.4 + 1.0 / 32.0), 0.05);
}

TEST(Zvc, RatioIndependentOfZeroPlacement)
{
    // The defining ZVC property: only the *count* of zeros matters.
    constexpr size_t kWords = 4096;
    std::vector<float> clustered(kWords, 0.0f);
    std::vector<float> scattered(kWords, 0.0f);
    // 50% zeros, clustered in the first half vs alternating.
    for (size_t i = 0; i < kWords / 2; ++i)
        clustered[kWords / 2 + i] = 3.0f;
    for (size_t i = 0; i < kWords; i += 2)
        scattered[i] = 3.0f;

    ZvcCompressor zvc;
    EXPECT_EQ(zvc.compress(wordsToBytes(clustered)).compressedBytes(),
              zvc.compress(wordsToBytes(scattered)).compressedBytes());
}

TEST(Zvc, PredictedBytesMatchesCodec)
{
    Rng rng(23);
    std::vector<float> words(10000);
    uint64_t nonzero = 0;
    for (auto &w : words) {
        if (rng.bernoulli(0.3)) {
            w = static_cast<float>(rng.normal());
            if (w != 0.0f)
                ++nonzero;
        }
    }
    // Single window covering everything so prediction applies exactly.
    ZvcCompressor zvc(words.size() * 4);
    const auto result = zvc.compress(wordsToBytes(words));
    EXPECT_EQ(result.compressedBytes(),
              ZvcCompressor::predictedBytes(words.size(), nonzero));
}

TEST(Zvc, RoundTripExactOnRandomSparseData)
{
    Rng rng(31);
    std::vector<float> words(12345);
    for (auto &w : words)
        w = rng.bernoulli(0.5) ? 0.0f : static_cast<float>(rng.normal());
    const auto input = wordsToBytes(words);
    ZvcCompressor zvc;
    EXPECT_EQ(zvc.decompress(zvc.compress(input)).value(), input);
}

TEST(Zvc, RoundTripNonWordAlignedTail)
{
    Rng rng(37);
    std::vector<uint8_t> input(4097 * 4 + 3);
    for (auto &b : input)
        b = rng.bernoulli(0.7) ? 0 : static_cast<uint8_t>(rng.uniformInt(
            256));
    ZvcCompressor zvc;
    EXPECT_EQ(zvc.decompress(zvc.compress(input)).value(), input);
}

TEST(Zvc, EmptyInput)
{
    ZvcCompressor zvc;
    const auto result = zvc.compress({});
    EXPECT_EQ(result.compressedBytes(), 0u);
    EXPECT_TRUE(zvc.decompress(result).value().empty());
}

TEST(Zvc, NegativeZeroIsNonZeroBitPattern)
{
    // -0.0f has a nonzero bit pattern; the hardware compares words, so it
    // must be kept (lossless!), not compressed away.
    std::vector<float> words = {-0.0f, 0.0f, 1.0f};
    const auto input = wordsToBytes(words);
    ZvcCompressor zvc;
    const auto result = zvc.compress(input);
    const auto output = zvc.decompress(result);
    EXPECT_EQ(output.value(), input);
    // mask(4) + two non-zero words (8): -0.0 stored explicitly.
    EXPECT_EQ(result.compressedBytes(), 4u + 8u);
}

class ZvcDensitySweep : public ::testing::TestWithParam<double>
{
};

TEST_P(ZvcDensitySweep, RatioTracksAnalyticModel)
{
    // ratio(d) = 1 / (d + 1/32): mask bit per word plus non-zero payload.
    const double density = GetParam();
    Rng rng(101);
    std::vector<float> words(1 << 17);
    for (auto &w : words) {
        w = rng.bernoulli(density)
            ? 1.0f + static_cast<float>(rng.uniform()) : 0.0f;
    }
    ZvcCompressor zvc;
    const double measured = zvc.measureRatio(wordsToBytes(words));
    // effectiveRatio applies the store-raw fallback, so fully dense data
    // floors at 1.0 instead of paying the mask overhead.
    const double predicted =
        std::max(1.0, 1.0 / (density + 1.0 / 32.0));
    EXPECT_NEAR(measured, predicted, predicted * 0.02);
}

INSTANTIATE_TEST_SUITE_P(Densities, ZvcDensitySweep,
                         ::testing::Values(0.05, 0.1, 0.25, 0.5, 0.75,
                                           0.9, 1.0));

} // namespace
} // namespace cdma
