/**
 * @file
 * End-to-end integrity and fault-tolerance tests: seeded link faults
 * must be detected by the CRC/length framing, masked by bounded retry,
 * and priced on the timeline — with the restored bytes byte-identical
 * to the source in every surviving case. Covers the retry path, the
 * degradation-to-raw-framing path, retry-budget exhaustion in both
 * directions, stored-shard CRC tampering, retry-stall pricing on the
 * DES timeline, and the analytic expectation fold in planFromRatio.
 */

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "cdma/transfer_engine.hh"
#include "common/rng.hh"
#include "sim/fault_injector.hh"

namespace cdma {
namespace {

/** ReLU-like fp32 words at the given density. */
std::vector<uint8_t>
makeInput(double density, size_t bytes, uint64_t seed)
{
    Rng rng(seed);
    std::vector<uint8_t> input(bytes, 0);
    const size_t words = bytes / 4;
    for (size_t i = 0; i < words; ++i) {
        if (density > 0.0 && rng.bernoulli(density)) {
            const float value =
                1.0f + static_cast<float>(std::abs(rng.normal()));
            std::memcpy(input.data() + i * 4, &value, 4);
        }
    }
    for (size_t i = words * 4; i < bytes; ++i)
        input[i] = static_cast<uint8_t>(1 + rng.uniformInt(255));
    return input;
}

CdmaEngine
makeFaultyEngine(sim::FaultInjector *injector,
                 RetryPolicy retry = RetryPolicy{})
{
    CdmaConfig config;
    config.transfer.timing_mode = TimingMode::Overlapped;
    config.transfer.fault_injector = injector;
    config.transfer.retry = retry;
    return CdmaEngine(config);
}

TEST(Integrity, RetriesMaskBitFlipsByteIdentical)
{
    // A flip rate that guarantees rejected crossings over a few MB but
    // stays far from the retry budget: faults are detected (CRC), the
    // crossing repeats, and the restored bytes never see the damage.
    sim::FaultConfig faults;
    faults.bit_flip_rate_per_byte = 2e-6;
    sim::FaultInjector injector(faults);
    const CdmaEngine engine = makeFaultyEngine(&injector);
    const TransferEngine transfers(engine);
    const auto input = makeInput(0.35, 4 << 20, 71);

    SpillArena arena;
    TransferIntegrity integrity;
    bool identical = true;
    for (int round = 0; round < 4; ++round) {
        const StatusOr<SpilledOffload> spilled =
            transfers.offloadInto(input, arena);
        ASSERT_TRUE(spilled.ok()) << spilled.status().toString();
        integrity.accumulate(spilled->integrity);
        const StatusOr<PrefetchResult> restored =
            transfers.prefetch(arena, spilled->ticket);
        ASSERT_TRUE(restored.ok()) << restored.status().toString();
        integrity.accumulate(restored->integrity);
        identical = identical &&
            restored->data == ByteVec(input.begin(), input.end());
        arena.release(spilled->ticket);
    }

    EXPECT_TRUE(identical);
    EXPECT_GT(integrity.retries, 0u);
    EXPECT_GT(integrity.crc_failures, 0u);
    EXPECT_GT(integrity.attempts, integrity.retries);
    EXPECT_GT(integrity.failed_wire_bytes, 0u);
}

TEST(Integrity, FaultSequenceIsDeterministicFromSeed)
{
    const auto input = makeInput(0.4, 1 << 20, 72);
    // Hot enough that the seed sees faults, cool enough that no shard
    // can plausibly burn the whole default retry budget.
    sim::FaultConfig faults;
    faults.bit_flip_rate_per_byte = 2e-6;

    auto roundTrip = [&](TransferIntegrity &integrity) {
        sim::FaultInjector injector(faults);
        const CdmaEngine engine = makeFaultyEngine(&injector);
        const TransferEngine transfers(engine);
        SpillArena arena;
        const StatusOr<SpilledOffload> spilled =
            transfers.offloadInto(input, arena);
        ASSERT_TRUE(spilled.ok());
        integrity.accumulate(spilled->integrity);
        const StatusOr<PrefetchResult> restored =
            transfers.prefetch(arena, spilled->ticket);
        ASSERT_TRUE(restored.ok());
        integrity.accumulate(restored->integrity);
    };

    TransferIntegrity a, b;
    roundTrip(a);
    roundTrip(b);
    EXPECT_EQ(a.attempts, b.attempts);
    EXPECT_EQ(a.retries, b.retries);
    EXPECT_EQ(a.crc_failures, b.crc_failures);
    EXPECT_EQ(a.link_faults, b.link_faults);
    EXPECT_EQ(a.failed_wire_bytes, b.failed_wire_bytes);
}

TEST(Integrity, RepeatedFaultsDegradeShardsToRawFraming)
{
    // Truncation-heavy link: shards hit raw_fallback_after and re-frame
    // as raw bytes (the robustness analogue of store-raw). A generous
    // attempt budget keeps exhaustion out of the picture; the restored
    // bytes must still be identical because raw-framed shards memcpy.
    sim::FaultConfig faults;
    faults.truncate_rate = 0.5;
    sim::FaultInjector injector(faults);
    RetryPolicy retry;
    retry.max_attempts = 64;
    retry.raw_fallback_after = 2;
    const CdmaEngine engine = makeFaultyEngine(&injector, retry);
    const TransferEngine transfers(engine);
    const auto input = makeInput(0.3, 1 << 20, 73);

    SpillArena arena;
    const StatusOr<SpilledOffload> spilled =
        transfers.offloadInto(input, arena);
    ASSERT_TRUE(spilled.ok()) << spilled.status().toString();
    EXPECT_GT(spilled->integrity.degraded_shards, 0u);
    EXPECT_GT(spilled->integrity.link_faults, 0u);

    // Degraded shards carry raw framing in the arena...
    bool saw_raw_framed = false;
    for (size_t s = 0; s < arena.shardCount(spilled->ticket); ++s) {
        const SpillShardView view = arena.shard(spilled->ticket, s);
        if (view.raw_framed) {
            saw_raw_framed = true;
            EXPECT_EQ(view.payload.size(), view.raw_bytes);
        }
    }
    EXPECT_TRUE(saw_raw_framed);

    // ...and the prefetch side restores them byte-identical.
    const StatusOr<PrefetchResult> restored =
        transfers.prefetch(arena, spilled->ticket);
    ASSERT_TRUE(restored.ok()) << restored.status().toString();
    EXPECT_EQ(restored->data, ByteVec(input.begin(), input.end()));
    arena.release(spilled->ticket);
}

TEST(Integrity, DeadLinkExhaustsOffloadRetryBudget)
{
    sim::FaultConfig faults;
    faults.link_failure_rate = 1.0;
    sim::FaultInjector injector(faults);
    const CdmaEngine engine = makeFaultyEngine(&injector);
    const TransferEngine transfers(engine);
    const auto input = makeInput(0.4, 1 << 18, 74);

    SpillArena arena;
    const StatusOr<SpilledOffload> spilled =
        transfers.offloadInto(input, arena);
    ASSERT_FALSE(spilled.ok());
    EXPECT_EQ(spilled.status().code(), StatusCode::RetryExhausted)
        << spilled.status().toString();
    // The failed spill released its partially filled ticket.
    EXPECT_EQ(arena.stats().live_buffers, 0u);
}

TEST(Integrity, DeadLinkExhaustsPrefetchRetryBudget)
{
    // Spill through a clean engine, prefetch through a dead link: the
    // prefetch direction owns its own fault process and must exhaust.
    CdmaConfig clean_config;
    clean_config.transfer.timing_mode = TimingMode::Overlapped;
    const CdmaEngine clean(clean_config);
    const auto input = makeInput(0.4, 1 << 18, 75);
    SpillArena arena;
    const StatusOr<SpilledOffload> spilled =
        TransferEngine(clean).offloadInto(input, arena);
    ASSERT_TRUE(spilled.ok());

    sim::FaultConfig faults;
    faults.link_failure_rate = 1.0;
    sim::FaultInjector injector(faults);
    const CdmaEngine faulty = makeFaultyEngine(&injector);
    const StatusOr<PrefetchResult> restored =
        TransferEngine(faulty).prefetch(arena, spilled->ticket);
    ASSERT_FALSE(restored.ok());
    EXPECT_EQ(restored.status().code(), StatusCode::RetryExhausted)
        << restored.status().toString();

    // The pristine copy is still in the arena: a healthy link (or a
    // recovered one) can still bring it back.
    const StatusOr<PrefetchResult> recovered =
        TransferEngine(clean).prefetch(arena, spilled->ticket);
    ASSERT_TRUE(recovered.ok());
    EXPECT_EQ(recovered->data, ByteVec(input.begin(), input.end()));
    arena.release(spilled->ticket);
}

TEST(Integrity, TamperedStoredShardFailsCrcVerification)
{
    // Corrupt a stored shard byte in host memory (spilled-state rot
    // rather than a wire fault): the prefetch-side CRC check must
    // reject it before any decode runs.
    CdmaConfig config;
    config.transfer.timing_mode = TimingMode::Overlapped;
    const CdmaEngine engine(config);
    const TransferEngine transfers(engine);
    const auto input = makeInput(0.4, 1 << 18, 76);
    SpillArena arena;
    const StatusOr<SpilledOffload> spilled =
        transfers.offloadInto(input, arena);
    ASSERT_TRUE(spilled.ok());

    const SpillShardView view = arena.shard(spilled->ticket, 0);
    ASSERT_FALSE(view.payload.empty());
    const_cast<uint8_t &>(view.payload[view.payload.size() / 2]) ^= 0x20;

    const StatusOr<PrefetchResult> restored =
        transfers.prefetch(arena, spilled->ticket);
    ASSERT_FALSE(restored.ok());
    EXPECT_EQ(restored.status().code(), StatusCode::IntegrityError)
        << restored.status().toString();
    arena.release(spilled->ticket);
}

TEST(Integrity, RetryStallIsPricedOnTheTimeline)
{
    // The same spill on a clean and a flip-prone link: the faulty run
    // reports its re-sent bytes and backoff as retry stall, and its
    // pipeline makespan is strictly longer — clean shards price
    // identically, so the difference is entirely fault-attributable.
    const auto input = makeInput(0.35, 4 << 20, 77);

    CdmaConfig clean_config;
    clean_config.transfer.timing_mode = TimingMode::Overlapped;
    const CdmaEngine clean(clean_config);
    SpillArena clean_arena;
    const StatusOr<SpilledOffload> clean_spill =
        TransferEngine(clean).offloadInto(input, clean_arena);
    ASSERT_TRUE(clean_spill.ok());
    EXPECT_DOUBLE_EQ(clean_spill->timing.retry_stall_seconds, 0.0);
    EXPECT_DOUBLE_EQ(clean_spill->integrity.retry_stall_seconds, 0.0);
    EXPECT_EQ(clean_spill->integrity.retries, 0u);
    EXPECT_EQ(clean_spill->integrity.attempts,
              static_cast<uint64_t>(clean_spill->shards.size()));

    sim::FaultConfig faults;
    faults.bit_flip_rate_per_byte = 2e-6;
    sim::FaultInjector injector(faults);
    const CdmaEngine faulty = makeFaultyEngine(&injector);
    SpillArena faulty_arena;
    const StatusOr<SpilledOffload> faulty_spill =
        TransferEngine(faulty).offloadInto(input, faulty_arena);
    ASSERT_TRUE(faulty_spill.ok()) << faulty_spill.status().toString();
    ASSERT_GT(faulty_spill->integrity.retries, 0u);
    EXPECT_GT(faulty_spill->timing.retry_stall_seconds, 0.0);
    EXPECT_GT(faulty_spill->timing.overlapped_seconds,
              clean_spill->timing.overlapped_seconds);
    // The stall is part of the wire leg, never larger than it.
    EXPECT_LE(faulty_spill->timing.retry_stall_seconds,
              faulty_spill->timing.wire_seconds + 1e-12);
}

TEST(Integrity, PlanFromRatioFoldsExpectedRetries)
{
    // The analytic path prices the fault process in expectation: no RNG
    // draws, attempts above one crossing per shard, and a longer
    // makespan than the fault-free closed form.
    sim::FaultConfig faults;
    faults.link_failure_rate = 0.2;
    sim::FaultInjector injector(faults);
    const CdmaEngine faulty = makeFaultyEngine(&injector);
    CdmaConfig clean_config;
    clean_config.transfer.timing_mode = TimingMode::Overlapped;
    const CdmaEngine clean(clean_config);

    const uint64_t raw = 64ull << 20;
    const TransferPlan faulty_plan = faulty.planFromRatio("m", raw, 2.5);
    const TransferPlan clean_plan = clean.planFromRatio("m", raw, 2.5);

    // Expectation fold, not sampling: the injector drew nothing.
    EXPECT_EQ(injector.crossingsSampled(), 0u);
    EXPECT_GT(faulty_plan.integrity.attempts,
              2 * faulty_plan.offload.shard_count);
    EXPECT_GT(faulty_plan.integrity.retries, 0u);
    EXPECT_GT(faulty_plan.integrity.failed_wire_bytes, 0u);
    EXPECT_GT(faulty_plan.integrity.retry_stall_seconds, 0.0);
    EXPECT_GT(faulty_plan.offload.overlapped_seconds,
              clean_plan.offload.overlapped_seconds);
    EXPECT_GT(faulty_plan.prefetch.overlapped_seconds,
              clean_plan.prefetch.overlapped_seconds);

    // Fault-free plans keep the seed's integrity surface at zero.
    EXPECT_EQ(clean_plan.integrity.retries, 0u);
    EXPECT_DOUBLE_EQ(clean_plan.integrity.retry_stall_seconds, 0.0);
}

} // namespace
} // namespace cdma
