/**
 * @file
 * Build a NetworkDesc from a live dnn::Network. This closes the loop
 * between the two halves of the reproduction: the training framework
 * produces a real model with real activation sparsity, and describing it
 * yields the static metadata (shapes, MACs, ReLU placement) the memory
 * and performance experiments consume — so a user can ask "what would
 * cDMA do for *my* model" end to end (see bench/e2e_scaled_pipeline).
 */

#ifndef CDMA_MODELS_DESCRIBE_HH
#define CDMA_MODELS_DESCRIBE_HH

#include <string>

#include "dnn/network.hh"
#include "models/desc.hh"

namespace cdma {

/**
 * Describe @p network for a single-image input of the given shape.
 * One descriptor row is produced per non-in-place layer (conv, pool, fc,
 * concat), mirroring Network::activationRecords(). MAC counts come from
 * the layers themselves (exact for conv/fc, window-sized for pool;
 * composite concat modules are charged their branches' convolutions).
 *
 * @param name Descriptor name.
 * @param network The live network (not modified; a probe forward pass is
 *        NOT required — shapes are derived statically).
 * @param input Per-image input shape (n is forced to 1).
 * @param default_batch Batch size recorded in the descriptor.
 */
NetworkDesc describeNetwork(const std::string &name, const Network &network,
                            Shape4D input, int64_t default_batch);

} // namespace cdma

#endif // CDMA_MODELS_DESCRIBE_HH
