#include "dnn/layer.hh"

#include <algorithm>

namespace cdma {

void
ParamBlob::clearGrad()
{
    std::fill(grad.begin(), grad.end(), 0.0f);
}

void
ParamBlob::apply(const SgdConfig &config)
{
    for (size_t i = 0; i < value.size(); ++i) {
        const float g = grad[i] + config.weight_decay * value[i];
        momentum[i] = config.momentum * momentum[i] -
            config.learning_rate * g;
        value[i] += momentum[i];
    }
}

Layer::Layer(std::string name) : name_(std::move(name))
{
}

} // namespace cdma
