/**
 * @file
 * Figure 4 reproduction: average output-activation density of each
 * AlexNet layer sampled across training (columns = checkpoints from
 * initialization to fully trained). Expected structure (Section IV-A):
 * conv0 pinned near 50%; density plunges early then partially recovers
 * (U-shape); pooling rows denser than their conv inputs; FC rows the
 * sparsest. Run on the scaled AlexNet trained on the synthetic task.
 */

#include <cstdio>

#include "common/harness.hh"
#include "common/stats.hh"

using namespace cdma;
using bench::Table;

int
main(int argc, char **argv)
{
    bench::ScaledRunConfig config;
    config.iterations = 300;
    config.snapshots = 10;
    bench::parseTrainArgs(argc, argv, config);

    std::printf("== Figure 4: AlexNet per-layer activation density over "
                "training ==\n");
    const auto run = bench::trainScaledNetwork("AlexNet", config);

    std::vector<std::string> headers = {"layer"};
    for (const auto &snap : run.snapshots)
        headers.push_back(
            Table::num(100.0 * snap.progress, 0) + "%");
    Table table(headers);

    const auto &first = run.snapshots.front().records;
    WeightedMean final_density;
    for (size_t layer = 0; layer < first.size(); ++layer) {
        std::vector<std::string> row = {first[layer].label};
        for (const auto &snap : run.snapshots)
            row.push_back(Table::num(snap.records[layer].density, 2));
        table.addRow(row);
        const auto &last = run.snapshots.back().records[layer];
        final_density.add(last.density,
                          static_cast<double>(last.shape.bytes()));
    }
    table.print();

    std::printf("\nnetwork-wide density (byte-weighted, trained): %.3f "
                "-> sparsity %.1f%% (paper AlexNet: ~49.4%%)\n",
                final_density.mean(),
                100.0 * (1.0 - final_density.mean()));
    std::printf("validation accuracy: %.1f%%\n",
                100.0 * run.val_accuracy);
    return 0;
}
