/**
 * @file
 * Vanilla (Elman) recurrent layer with a selectable activation, unrolled
 * over the sequence with full backpropagation-through-time. Section III
 * claims cDMA applies to the GEMV-based ReLU RNNs used for speech
 * recognition and translation (Deep Speech) but not to sigmoid/tanh
 * LSTMs/GRUs whose states are never exactly zero; this layer lets the
 * benchmarks measure exactly that contrast on trained models.
 *
 * Tensor convention: sequences are packed as (N, T, 1, I) — batch,
 * time steps, 1, features — and the layer emits the hidden-state
 * sequence (N, T, 1, H).
 */

#ifndef CDMA_DNN_RNN_HH
#define CDMA_DNN_RNN_HH

#include "common/rng.hh"
#include "dnn/layer.hh"

namespace cdma {

/** Recurrent-cell nonlinearity. */
enum class RnnActivation {
    ReLU, ///< sparsity-inducing (Deep Speech-style)
    Tanh, ///< classic Elman; never exactly zero
};

/** Elman RNN layer: h_t = act(W_x x_t + W_h h_{t-1} + b). */
class Rnn : public Layer
{
  public:
    /**
     * @param name Layer instance name.
     * @param input_features Input feature count I.
     * @param hidden_features Hidden state width H.
     * @param activation Cell nonlinearity.
     * @param rng Weight-initialization stream.
     */
    Rnn(std::string name, int64_t input_features, int64_t hidden_features,
        RnnActivation activation, Rng &rng);

    std::string type() const override { return "rnn"; }
    Shape4D outputShape(const Shape4D &input) const override;
    Tensor4D forward(const Tensor4D &input) override;
    Tensor4D backward(const Tensor4D &output_grad) override;
    std::vector<ParamBlob *> params() override;

    /** Cell nonlinearity. */
    RnnActivation activation() const { return activation_; }

    uint64_t forwardMacsPerImage(const Shape4D &input) const override
    {
        return static_cast<uint64_t>(input.c) *
            static_cast<uint64_t>(hidden_features_ *
                                  (input_features_ + hidden_features_));
    }

  private:
    /** Apply the nonlinearity. */
    float activate(float pre) const;
    /** Derivative of the nonlinearity given the *output* value. */
    float activateGradFromOutput(float out) const;

    int64_t input_features_;
    int64_t hidden_features_;
    RnnActivation activation_;
    ParamBlob w_input_;  // [H][I]
    ParamBlob w_hidden_; // [H][H]
    ParamBlob bias_;     // [H]
    Tensor4D cached_input_;
    Tensor4D cached_hidden_; // (N, T, 1, H) post-activation states
};

} // namespace cdma

#endif // CDMA_DNN_RNN_HH
