#include "obs/trace.hh"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "common/logging.hh"

namespace cdma::obs {

namespace {

/** Escape the characters JSON string literals cannot carry verbatim. */
std::string
jsonEscape(const std::string &raw)
{
    std::string out;
    out.reserve(raw.size());
    for (char c : raw) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/**
 * Microsecond timestamp with fixed three-decimal precision — the
 * formatting (not just the simulation) must be deterministic for traces
 * to be byte-stable across runs.
 */
std::string
formatMicros(double seconds)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f", seconds * 1e6);
    return buf;
}

std::string
formatValue(const TraceValue &value)
{
    switch (value.kind()) {
      case TraceValue::Kind::U64: {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(value.u64()));
        return buf;
      }
      case TraceValue::Kind::F64: {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.6g", value.f64());
        return buf;
      }
      case TraceValue::Kind::Str:
        return "\"" + jsonEscape(value.str()) + "\"";
    }
    return "null";
}

std::string
formatArgs(const TraceArgs &args)
{
    std::string out = "{";
    bool first = true;
    for (const auto &[key, value] : args) {
        if (!first)
            out += ",";
        first = false;
        out += "\"" + jsonEscape(key) + "\":" + formatValue(value);
    }
    out += "}";
    return out;
}

} // namespace

TrackId
TraceRecorder::track(const std::string &process, const std::string &thread)
{
    const auto key = std::make_pair(process, thread);
    if (auto it = track_index_.find(key); it != track_index_.end())
        return it->second;
    auto [pid_it, inserted] =
        pids_.emplace(process, static_cast<uint32_t>(pids_.size() + 1));
    (void)inserted;
    uint32_t tid = 1;
    for (const Track &t : tracks_) {
        if (t.process == process && !t.is_counter)
            ++tid;
    }
    const auto id = static_cast<TrackId>(tracks_.size());
    tracks_.push_back(Track{process, thread, pid_it->second, tid, false});
    track_index_.emplace(key, id);
    return id;
}

TrackId
TraceRecorder::counterTrack(const std::string &process,
                            const std::string &name)
{
    // Counter tracks share the track_index_ namespace with a sentinel
    // prefix so a counter and a thread with the same name don't alias.
    const auto key = std::make_pair(process, "\x01counter\x01" + name);
    if (auto it = track_index_.find(key); it != track_index_.end())
        return it->second;
    auto [pid_it, inserted] =
        pids_.emplace(process, static_cast<uint32_t>(pids_.size() + 1));
    (void)inserted;
    const auto id = static_cast<TrackId>(tracks_.size());
    tracks_.push_back(Track{process, name, pid_it->second, 0, true});
    track_index_.emplace(key, id);
    return id;
}

void
TraceRecorder::span(TrackId track, std::string name, double begin_s,
                    double end_s, TraceArgs args)
{
    CDMA_ASSERT(track < tracks_.size(), "unknown trace track %u", track);
    CDMA_ASSERT(end_s >= begin_s, "span '%s' ends (%g) before it begins (%g)",
                name.c_str(), end_s, begin_s);
    events_.push_back(Event{Phase::Span, track, std::move(name), begin_s,
                            end_s, 0.0, std::move(args)});
}

void
TraceRecorder::instant(TrackId track, std::string name, double at_s,
                       TraceArgs args)
{
    CDMA_ASSERT(track < tracks_.size(), "unknown trace track %u", track);
    events_.push_back(Event{Phase::Instant, track, std::move(name), at_s,
                            at_s, 0.0, std::move(args)});
}

void
TraceRecorder::counter(TrackId track, double at_s, double value)
{
    CDMA_ASSERT(track < tracks_.size(), "unknown trace track %u", track);
    CDMA_ASSERT(tracks_[track].is_counter,
                "track %u ('%s') is not a counter track", track,
                tracks_[track].thread.c_str());
    events_.push_back(
        Event{Phase::Counter, track, tracks_[track].thread, at_s, at_s,
              value, {}});
}

void
TraceRecorder::setTotal(const std::string &key, uint64_t value)
{
    totals_[key] = value;
}

std::string
TraceRecorder::toJson() const
{
    std::string out = "{\"traceEvents\":[\n";
    bool first = true;
    auto append = [&](const std::string &line) {
        if (!first)
            out += ",\n";
        first = false;
        out += line;
    };

    // Metadata first: name every pid once and every (pid, tid) pair.
    std::map<uint32_t, std::string> process_names;
    for (const auto &[process, pid] : pids_)
        process_names[pid] = process;
    for (const auto &[pid, process] : process_names) {
        char head[64];
        std::snprintf(head, sizeof(head),
                      "{\"ph\":\"M\",\"pid\":%u,\"tid\":0,", pid);
        append(std::string(head) +
               "\"name\":\"process_name\",\"args\":{\"name\":\"" +
               jsonEscape(process) + "\"}}");
    }
    for (const Track &t : tracks_) {
        if (t.is_counter)
            continue;
        char head[64];
        std::snprintf(head, sizeof(head),
                      "{\"ph\":\"M\",\"pid\":%u,\"tid\":%u,", t.pid, t.tid);
        append(std::string(head) +
               "\"name\":\"thread_name\",\"args\":{\"name\":\"" +
               jsonEscape(t.thread) + "\"}}");
    }

    // Events in timestamp order; stable sort keeps emission order for
    // ties so serialization is deterministic.
    std::vector<const Event *> ordered;
    ordered.reserve(events_.size());
    for (const Event &e : events_)
        ordered.push_back(&e);
    std::stable_sort(ordered.begin(), ordered.end(),
                     [](const Event *a, const Event *b) {
                         return a->begin_s < b->begin_s;
                     });

    for (const Event *e : ordered) {
        const Track &t = tracks_[e->track];
        char head[64];
        std::snprintf(head, sizeof(head), "{\"pid\":%u,\"tid\":%u,", t.pid,
                      t.tid);
        std::string line = head;
        line += "\"name\":\"" + jsonEscape(e->name) + "\",";
        switch (e->phase) {
          case Phase::Span:
            line += "\"ph\":\"X\",\"ts\":" + formatMicros(e->begin_s) +
                ",\"dur\":" + formatMicros(e->end_s - e->begin_s);
            break;
          case Phase::Instant:
            line += "\"ph\":\"i\",\"s\":\"t\",\"ts\":" +
                formatMicros(e->begin_s);
            break;
          case Phase::Counter: {
            char value[64];
            std::snprintf(value, sizeof(value), "%.6g", e->value);
            line += "\"ph\":\"C\",\"ts\":" + formatMicros(e->begin_s) +
                ",\"args\":{\"value\":" + std::string(value) + "}}";
            append(line);
            continue;
          }
        }
        if (!e->args.empty())
            line += ",\"args\":" + formatArgs(e->args);
        line += "}";
        append(line);
    }

    out += "\n],\n\"displayTimeUnit\":\"ms\",\n\"otherData\":{";
    bool first_total = true;
    for (const auto &[key, value] : totals_) {
        if (!first_total)
            out += ",";
        first_total = false;
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(value));
        out += "\"" + jsonEscape(key) + "\":" + buf;
    }
    out += "}}\n";
    return out;
}

void
TraceRecorder::writeFileOrDie(const std::string &path) const
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        fatal("cannot open trace output '%s'", path.c_str());
    out << toJson();
    out.flush();
    if (!out)
        fatal("failed writing trace output '%s'", path.c_str());
}

std::string
extractFlag(int &argc, char **argv, const std::string &name)
{
    const std::string prefix = "--" + name + "=";
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]).rfind(prefix, 0) != 0)
            continue;
        std::string value = std::string(argv[i]).substr(prefix.size());
        for (int j = i; j + 1 < argc; ++j)
            argv[j] = argv[j + 1];
        --argc;
        return value;
    }
    return "";
}

} // namespace cdma::obs
