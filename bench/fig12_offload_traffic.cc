/**
 * @file
 * Figure 12 reproduction: size of the activation maps offloaded to CPU
 * memory (PCIe traffic), normalized to the uncompressed vDNN baseline,
 * for RL / ZV / ZL under the NCHW layout. The normalized size is the
 * reciprocal of the byte-weighted network compression ratio.
 *
 * The footer additionally drives the per-network ZV offload schedule
 * through TimingMode::Overlapped (the Section V-C double-buffered
 * pipeline) and reports the wall-time delta against the seed's
 * compression-free transfer model: traffic is timing-mode-invariant,
 * the seconds it takes are not. The prefetch leg (wire in, then
 * decompress — what backprop waits on) is reported symmetrically from
 * the mirrored PrefetchScheduler pipeline.
 */

#include <cstdio>

#include "common/harness.hh"
#include "vdnn/memory_manager.hh"

using namespace cdma;
using bench::Table;

int
main()
{
    std::printf("== Figure 12: offloaded bytes normalized to vDNN "
                "(lower is better) ==\n");
    Table table({"network", "vDNN", "RL", "ZV", "ZL"});
    double zv_sum = 0.0, zl_sum = 0.0;
    double free_seconds = 0.0, overlapped_seconds = 0.0;
    double prefetch_seconds = 0.0, prefetch_hidden = 0.0;
    double prefetch_serialized = 0.0;

    const CdmaEngine free_engine{CdmaConfig{}};
    CdmaConfig overlapped_config;
    overlapped_config.transfer.timing_mode = TimingMode::Overlapped;
    const CdmaEngine overlapped_engine(overlapped_config);

    for (const auto &net : allNetworkDescs()) {
        std::vector<std::string> row = {net.name, "1.000"};
        double zv = 1.0, zl = 1.0;
        for (Algorithm algorithm : kAllAlgorithms) {
            const auto result = bench::measureTimeAveragedRatios(
                net, algorithm, Layout::NCHW);
            const double normalized = 1.0 / result.average;
            row.push_back(Table::num(normalized, 3));
            if (algorithm == Algorithm::Zvc) {
                zv = normalized;
                // Offload wall time of the ZV schedule under both
                // transfer-timing models (forward direction).
                VdnnMemoryManager manager(net, net.default_batch);
                std::vector<double> ratios;
                ratios.reserve(result.layers.size());
                for (const auto &layer : result.layers)
                    ratios.push_back(layer.ratio);
                for (const auto &plan :
                     manager.plannedOffloads(free_engine, ratios))
                    free_seconds += plan.seconds;
                for (const auto &plan :
                     manager.plannedOffloads(overlapped_engine, ratios))
                    overlapped_seconds += plan.seconds;
                // The backward direction waits on the mirrored
                // wire-in/decompress pipeline instead.
                for (const auto &plan :
                     manager.plannedPrefetches(overlapped_engine,
                                               ratios)) {
                    prefetch_seconds += plan.seconds;
                    prefetch_serialized +=
                        plan.prefetch.serializedSeconds();
                    prefetch_hidden += plan.prefetch.hiddenSeconds();
                }
            }
            if (algorithm == Algorithm::Zlib)
                zl = normalized;
        }
        zv_sum += zv;
        zl_sum += zl;
        table.addRow(row);
    }
    table.print();
    std::printf("\nZL reduces traffic by an average %.0f%% over ZV "
                "(paper: ~3%%)\n",
                100.0 * (zv_sum - zl_sum) / zv_sum);
    std::printf("ZV offload wall time, all networks: %.1f ms "
                "compression-free -> %.1f ms overlapped pipeline "
                "(+%.4f ms, +%.3f%%: at these ratios the double "
                "buffer hides all but one staging-shard fill of "
                "compression per transfer)\n",
                free_seconds * 1e3, overlapped_seconds * 1e3,
                (overlapped_seconds - free_seconds) * 1e3,
                free_seconds > 0.0
                    ? 100.0 * (overlapped_seconds - free_seconds) /
                        free_seconds
                    : 0.0);
    std::printf("ZV prefetch wall time, all networks: %.1f ms "
                "overlapped pipeline vs %.1f ms serialized "
                "(wire-in/decompress overlap hides %.1f ms; backprop "
                "waits on this leg)\n",
                prefetch_seconds * 1e3, prefetch_serialized * 1e3,
                prefetch_hidden * 1e3);
    return 0;
}
