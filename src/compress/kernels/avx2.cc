/**
 * @file
 * AVX2 kernel backend: vpcmpeqd mask formation with movemask extraction,
 * shuffle-table left-packing through vpermd (the 8-lane analogue of the
 * hardware shift network — one table lookup replaces the prefix sum),
 * the inverse expand table for the prefetch-side mask scatter (vpermd
 * again, with vpmaskmovd keeping partial payload loads inside the live
 * bytes), and 256-bit strides for the run scans and match extension.
 * Compiled
 * with per-function target attributes so the translation unit builds on
 * any x86-64 toolchain regardless of -march; whether the code ever runs
 * is a CPUID decision made in dispatch.cc.
 *
 * Output contract: byte-identical to the scalar backend for every op.
 */

#include "compress/kernels/kernels.hh"

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include <array>
#include <bit>
#include <cstring>

namespace cdma {

namespace {

#define CDMA_AVX2 __attribute__((target("avx2")))

/**
 * Left-pack shuffle table: row m holds, for an 8-bit non-zero mask m,
 * the dword indices of the set bits in ascending order (unused entries
 * point at lane 0 and are never read — the write pointer only advances
 * by popcount). Stored as bytes and widened with vpmovzxbd at use, so
 * the whole table is 2 KB and stays resident in L1.
 */
constexpr std::array<std::array<uint8_t, 8>, 256>
makeLeftPackTable()
{
    std::array<std::array<uint8_t, 8>, 256> table{};
    for (int mask = 0; mask < 256; ++mask) {
        int out = 0;
        for (int lane = 0; lane < 8; ++lane) {
            if (mask & (1 << lane))
                table[static_cast<size_t>(mask)]
                     [static_cast<size_t>(out++)] =
                    static_cast<uint8_t>(lane);
        }
    }
    return table;
}

constexpr auto kLeftPack = makeLeftPackTable();

/**
 * Inverse (expand) shuffle table: row m holds, for an 8-bit non-zero
 * mask m, the *packed-payload* index each output lane reads from — the
 * exclusive prefix popcount of m at that lane (unset lanes point at
 * payload word 0 and are zeroed after the permute). Same 2 KB byte
 * layout as kLeftPack, widened with vpmovzxbd at use.
 */
constexpr std::array<std::array<uint8_t, 8>, 256>
makeExpandTable()
{
    std::array<std::array<uint8_t, 8>, 256> table{};
    for (int mask = 0; mask < 256; ++mask) {
        int packed = 0;
        for (int lane = 0; lane < 8; ++lane) {
            table[static_cast<size_t>(mask)][static_cast<size_t>(lane)] =
                static_cast<uint8_t>(packed);
            if (mask & (1 << lane))
                ++packed;
        }
    }
    return table;
}

constexpr auto kExpand = makeExpandTable();

inline uint32_t
loadWord(const uint8_t *p)
{
    uint32_t value;
    std::memcpy(&value, p, sizeof(value));
    return value;
}

CDMA_AVX2 uint32_t
zvcCompactGroupAvx2(const uint8_t *src, uint32_t words, uint8_t *dst)
{
    const __m256i zero = _mm256_setzero_si256();
    uint32_t mask = 0;
    uint32_t w = 0;
    while (w + 8 <= words) {
        const __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(src + w * 4));
        // vpcmpeqd against zero, movemask -> 8-bit zero mask; invert for
        // the non-zero lanes.
        const __m256i eq = _mm256_cmpeq_epi32(v, zero);
        const uint32_t nz = ~static_cast<uint32_t>(_mm256_movemask_ps(
                                _mm256_castsi256_ps(eq))) &
            0xFFu;
        // All-zero sub-blocks (the common case in sparse activation
        // pages) emit nothing: skip the permute/store and move on at
        // load bandwidth, exactly like the scalar backend's OR-skip.
        if (nz == 0) {
            w += 8;
            continue;
        }
        // Shuffle-table left-pack: gather the non-zero lanes to the
        // front with one vpermd, store all 8 lanes unconditionally, and
        // advance the write pointer by the live bytes only.
        const __m128i packed_idx = _mm_loadl_epi64(
            reinterpret_cast<const __m128i *>(kLeftPack[nz].data()));
        const __m256i idx = _mm256_cvtepu8_epi32(packed_idx);
        const __m256i packed = _mm256_permutevar8x32_epi32(v, idx);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(dst), packed);
        dst += 4u * static_cast<uint32_t>(std::popcount(nz));
        mask |= nz << w;
        w += 8;
    }
    // Sub-block tail (groups shorter than 8 words): branchless scalar,
    // same emission order, so the output stays byte-identical.
    for (; w < words; ++w) {
        const uint32_t value = loadWord(src + w * 4);
        std::memcpy(dst, &value, 4);
        const uint32_t nzw = value != 0;
        dst += nzw * 4;
        mask |= nzw << w;
    }
    return mask;
}

CDMA_AVX2 uint32_t
zvcExpandGroupAvx2(const uint8_t *src, uint32_t mask, uint32_t words,
                   uint8_t *dst)
{
    const __m256i lane_bit =
        _mm256_setr_epi32(1, 2, 4, 8, 16, 32, 64, 128);
    const __m256i lane_index =
        _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
    size_t consumed = 0;
    uint32_t w = 0;
    while (w + 8 <= words) {
        const uint32_t m = (mask >> w) & 0xFFu;
        // All-zero sub-blocks store the zero vector and touch no
        // payload — the common case in sparse activation pages runs at
        // store bandwidth.
        if (m == 0) {
            _mm256_storeu_si256(reinterpret_cast<__m256i *>(dst + w * 4),
                                _mm256_setzero_si256());
            w += 8;
            continue;
        }
        // Full sub-blocks (the common case in dense pages) are a plain
        // wide copy: no permute, no keep-mask.
        if (m == 0xFFu) {
            _mm256_storeu_si256(
                reinterpret_cast<__m256i *>(dst + w * 4),
                _mm256_loadu_si256(
                    reinterpret_cast<const __m256i *>(src + consumed)));
            consumed += 32;
            w += 8;
            continue;
        }
        const uint32_t count = static_cast<uint32_t>(std::popcount(m));
        // The payload is only readable up to the live bytes, so partial
        // sub-blocks load through vpmaskmovd (disabled lanes are never
        // accessed).
        const __m256i live = _mm256_cmpgt_epi32(
            _mm256_set1_epi32(static_cast<int>(count)), lane_index);
        const __m256i packed = _mm256_maskload_epi32(
            reinterpret_cast<const int *>(src + consumed), live);
        // Inverse shuffle-table lookup: one vpermd routes payload word
        // prefix-popcount(m, lane) to every lane, then the mask's zero
        // lanes are blanked — the software mirror of the DPE's scatter
        // network.
        const __m128i packed_idx = _mm_loadl_epi64(
            reinterpret_cast<const __m128i *>(kExpand[m].data()));
        const __m256i idx = _mm256_cvtepu8_epi32(packed_idx);
        const __m256i scattered = _mm256_permutevar8x32_epi32(packed, idx);
        const __m256i keep = _mm256_cmpeq_epi32(
            _mm256_and_si256(_mm256_set1_epi32(static_cast<int>(m)),
                             lane_bit),
            lane_bit);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(dst + w * 4),
                            _mm256_and_si256(scattered, keep));
        consumed += count * 4;
        w += 8;
    }
    // Sub-block tail (groups shorter than 8 words): scalar scatter.
    for (; w < words; ++w) {
        uint32_t value = 0;
        if (mask & (1u << w)) {
            std::memcpy(&value, src + consumed, 4);
            consumed += 4;
        }
        std::memcpy(dst + w * 4, &value, 4);
    }
    return static_cast<uint32_t>(consumed);
}

CDMA_AVX2 uint64_t
zeroRunWordsAvx2(const uint8_t *words, uint64_t limit)
{
    uint64_t run = 0;
    while (run + 8 <= limit) {
        const __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(words + run * 4));
        if (!_mm256_testz_si256(v, v))
            break;
        run += 8;
    }
    while (run < limit && loadWord(words + run * 4) == 0)
        ++run;
    return run;
}

CDMA_AVX2 uint64_t
literalRunWordsAvx2(const uint8_t *words, uint64_t limit)
{
    const __m256i zero = _mm256_setzero_si256();
    uint64_t run = 0;
    while (run + 8 <= limit) {
        const __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(words + run * 4));
        const uint32_t zm = static_cast<uint32_t>(_mm256_movemask_ps(
            _mm256_castsi256_ps(_mm256_cmpeq_epi32(v, zero))));
        if (zm != 0)
            return run + static_cast<uint64_t>(std::countr_zero(zm));
        run += 8;
    }
    while (run < limit && loadWord(words + run * 4) != 0)
        ++run;
    return run;
}

CDMA_AVX2 size_t
matchLengthAvx2(const uint8_t *a, const uint8_t *b, size_t max)
{
    size_t len = 0;
    while (len + 32 <= max) {
        const __m256i x = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(a + len));
        const __m256i y = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(b + len));
        const uint32_t eq = static_cast<uint32_t>(
            _mm256_movemask_epi8(_mm256_cmpeq_epi8(x, y)));
        if (eq != 0xFFFFFFFFu) {
            return len + static_cast<size_t>(std::countr_zero(~eq));
        }
        len += 32;
    }
    while (len + 8 <= max) {
        uint64_t x, y;
        std::memcpy(&x, a + len, sizeof(x));
        std::memcpy(&y, b + len, sizeof(y));
        const uint64_t diff = x ^ y;
        if (diff != 0) {
            return len +
                static_cast<size_t>(std::countr_zero(diff)) / 8;
        }
        len += 8;
    }
    while (len < max && a[len] == b[len])
        ++len;
    return len;
}

/**
 * Above this size the libc memcpy/memset (rep-movs/ERMS fast strings on
 * modern x86) beats a 64-byte vector loop; below it the vector loop
 * skips the libc dispatch and ERMS startup cost. Matters mostly for
 * run *reconstruction*, where whole zero pages and page-long literal
 * runs are the common case at the paper's sparsity levels.
 */
constexpr size_t kBulkLibcBytes = 2048;

CDMA_AVX2 void
copyBytesAvx2(uint8_t *dst, const uint8_t *src, size_t n)
{
    // 64-byte unrolled copy for the literal-run / raw-tail sizes the
    // codecs emit; small copies stay with memcpy (inlined moves) and
    // page-class runs go back to libc's fast-string path.
    if (n >= kBulkLibcBytes) {
        std::memcpy(dst, src, n);
        return;
    }
    size_t i = 0;
    while (i + 64 <= n) {
        const __m256i lo = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(src + i));
        const __m256i hi = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(src + i + 32));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(dst + i), lo);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(dst + i + 32),
                            hi);
        i += 64;
    }
    if (i < n)
        std::memcpy(dst + i, src + i, n - i);
}

CDMA_AVX2 void
zeroFillBytesAvx2(uint8_t *dst, size_t n)
{
    // 64-byte zero stores for the run-reconstruction sizes the codecs
    // emit; small fills stay with memset (inlined moves) and
    // page-class zero runs go back to libc's fast-string path.
    if (n >= kBulkLibcBytes) {
        std::memset(dst, 0, n);
        return;
    }
    const __m256i zero = _mm256_setzero_si256();
    size_t i = 0;
    while (i + 64 <= n) {
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(dst + i), zero);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(dst + i + 32),
                            zero);
        i += 64;
    }
    if (i < n)
        std::memset(dst + i, 0, n - i);
}

/**
 * Hardware CRC32C: the SSE4.2 crc32 instruction retires 8 bytes per
 * issue (3-cycle latency, fully pipelined). Every AVX2 part implements
 * SSE4.2, so this rides the same CPUID gate as the rest of the backend;
 * the per-function target keeps the TU building regardless of -march.
 */
__attribute__((target("sse4.2"))) uint32_t
crc32Hw(uint32_t seed, const uint8_t *data, size_t n)
{
    uint64_t crc = ~seed;
    size_t i = 0;
    while (i + 8 <= n) {
        uint64_t word;
        std::memcpy(&word, data + i, sizeof(word));
        crc = _mm_crc32_u64(crc, word);
        i += 8;
    }
    for (; i < n; ++i)
        crc = _mm_crc32_u8(static_cast<uint32_t>(crc), data[i]);
    return ~static_cast<uint32_t>(crc);
}

#undef CDMA_AVX2

} // namespace

const KernelOps *
avx2Kernels()
{
    static const KernelOps ops = {
        "avx2",
        zvcCompactGroupAvx2,
        zvcExpandGroupAvx2,
        zeroRunWordsAvx2,
        literalRunWordsAvx2,
        matchLengthAvx2,
        copyBytesAvx2,
        zeroFillBytesAvx2,
        crc32Hw,
    };
    // Every AVX2 part ships SSE4.2, but the hardware CRC makes the
    // dependency explicit rather than assumed.
    static const bool supported = __builtin_cpu_supports("avx2") &&
        __builtin_cpu_supports("sse4.2");
    return supported ? &ops : nullptr;
}

} // namespace cdma

#else // !x86

namespace cdma {

const KernelOps *
avx2Kernels()
{
    return nullptr;
}

} // namespace cdma

#endif
