/**
 * @file
 * Example: "what would cDMA buy me on this network?" Walks the full
 * modeling pipeline for one network (default VGG-16 at its Table I
 * batch): vDNN offload schedule and memory footprint, per-layer
 * compression ratios on synthetic trained activations, the async
 * double-buffered offload AND prefetch pipelines' per-layer overlap
 * (compress/wire out on the forward pass, wire/decompress back on the
 * backward pass), a real-bytes spill through the compressed arena, and
 * the simulated training iteration under vDNN / cDMA / oracle with a
 * per-layer stall breakdown.
 *
 * Run: ./build/examples/offload_pipeline [AlexNet|OverFeat|NiN|VGG|
 *                                         SqueezeNet|GoogLeNet]
 */

#include <algorithm>
#include <cstdio>
#include <string>

#include "cdma/transfer_engine.hh"
#include "common/rng.hh"
#include "compress/parallel.hh"
#include "compress/policy.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "perf/step_sim.hh"
#include "sim/fault_injector.hh"
#include "sparsity/generator.hh"
#include "sparsity/schedule.hh"

using namespace cdma;

int
main(int argc, char **argv)
{
    const std::string trace_out =
        obs::extractFlag(argc, argv, "trace-out");
    const std::string metrics_out =
        obs::extractFlag(argc, argv, "metrics-out");
    const std::string name = argc > 1 ? argv[1] : "VGG";
    NetworkDesc net;
    bool found = false;
    for (const auto &candidate : allNetworkDescs()) {
        if (candidate.name == name) {
            net = candidate;
            found = true;
        }
    }
    if (!found) {
        std::fprintf(stderr, "unknown network '%s'\n", name.c_str());
        return 1;
    }

    // The engine models the async double-buffered offload pipeline:
    // compression latency is explicit, and shard k+1 compresses while
    // shard k drains over PCIe.
    CdmaConfig engine_config;
    engine_config.compression.lanes = 0; // all hardware threads
    engine_config.transfer.timing_mode = TimingMode::Overlapped;
    // The registry rides the engine config: the parallel compressor's
    // kernel wall-clock timers and the modeled per-shard transfer
    // latencies accumulate here across everything this example runs.
    obs::MetricsRegistry metrics;
    engine_config.obs.metrics = &metrics;
    CdmaEngine engine(engine_config);
    const TransferEngine transfers(engine);

    // 1. vDNN memory accounting (staging buffers included).
    VdnnMemoryManager manager(net, net.default_batch);
    const MemoryFootprint fp = manager.footprint(engine);
    std::printf("== %s, batch %lld (kernel backend: %s, %u lanes) ==\n",
                net.name.c_str(),
                static_cast<long long>(net.default_batch),
                engine.backendName(), engine.compressor().lanes());
    std::printf("baseline GPU memory: %.2f GB (activations+gradients "
                "%.0f%%)\n",
                static_cast<double>(fp.baseline_total) / 1e9,
                100.0 * fp.activationFraction());
    std::printf("vDNN working set:    %.2f GB (incl. %llu KB cDMA "
                "staging: %u x %llu-window shards)\n",
                static_cast<double>(fp.vdnn_peak) / 1e9,
                static_cast<unsigned long long>(fp.staging_bytes / 1024),
                engine.config().transfer.staging_buffers,
                static_cast<unsigned long long>(transfers.shardWindows()));
    std::printf("offload traffic:     %.2f GB per direction per "
                "iteration\n\n",
                static_cast<double>(manager.totalOffloadBytes()) / 1e9);

    // 2. Per-layer ZVC ratios from synthetic trained activations,
    //    compressed with the parallel window fan-out (one lane per
    //    hardware thread), the same path CdmaEngine::planTransfer uses
    //    when configured with compression_lanes != 1.
    const DensitySchedule schedule(net);
    const ActivationGenerator generator;
    const ParallelCompressor zvc(Algorithm::Zvc,
                                 Compressor::kDefaultWindowBytes,
                                 /*lanes=*/0);
    std::vector<double> ratios;
    for (size_t i = 0; i < net.layers.size(); ++i) {
        const LayerDesc &layer = net.layers[i];
        if (!layer.relu_follows) {
            ratios.push_back(1.0);
            continue;
        }
        const double density = schedule.density(i, 1.0);
        const int64_t max_c = std::max<int64_t>(
            1, (1 << 19) / (layer.height * layer.width));
        Rng rng(500 + i);
        const Tensor4D sample = generator.generate(
            Shape4D{1, std::min(layer.channels, max_c), layer.height,
                    layer.width},
            Layout::NCHW, density, rng);
        ratios.push_back(zvc.measureRatio(sample.rawBytes()));
    }

    // 3. The double-buffered pipelines per layer, both directions: on
    //    the forward pass the compression leg hides under the wire-out
    //    leg (or caps it, for fetch-capped layers); on the backward
    //    pass the wire-in leg hides under decompression.
    const auto plans = manager.plannedOffloads(engine, ratios);
    std::printf("offload + prefetch pipelines per layer (double-"
                "buffered, shard = %llu windows):\n",
                static_cast<unsigned long long>(transfers.shardWindows()));
    std::printf("  %-12s %9s %6s | %9s %9s %7s | %9s %9s %7s\n", "layer",
                "raw MB", "ratio", "comp ms", "off ms", "off-ovl",
                "dec ms", "pre ms", "pre-ovl");
    for (const auto &plan : plans) {
        std::printf("  %-12s %9.2f %5.1fx | %9.3f %9.3f %6.1f%% | "
                    "%9.3f %9.3f %6.1f%%%s\n",
                    plan.label.c_str(),
                    static_cast<double>(plan.raw_bytes) / 1e6, plan.ratio,
                    plan.offload.compress_seconds * 1e3,
                    plan.offload.overlapped_seconds * 1e3,
                    100.0 * plan.offload.overlap_fraction,
                    plan.prefetch.decompress_seconds * 1e3,
                    plan.prefetch.overlapped_seconds * 1e3,
                    100.0 * plan.prefetch.overlap_fraction,
                    plan.offload.compress_seconds >
                            plan.offload.wire_seconds
                        ? "  [comp-bound]"
                        : "");
    }
    double serialized = 0.0, overlapped = 0.0;
    for (const auto &plan : plans) {
        serialized += plan.offload.serializedSeconds();
        overlapped += plan.offload.overlapped_seconds;
    }
    std::printf("  offload total:  %.1f ms overlapped vs %.1f ms "
                "serialized (%.0f%% of the serialized latency hidden)\n",
                overlapped * 1e3, serialized * 1e3,
                serialized > 0.0
                    ? 100.0 * (serialized - overlapped) / serialized
                    : 0.0);

    // Backward propagation drains the mirrored pipeline in reverse
    // order: shard k+1 crosses PCIe while the decompression engine
    // re-inflates shard k. Both legs come from the SAME TransferEngine
    // plan per layer (each plan carries offload, prefetch and the
    // duplex race), so the columns and totals can never disagree on
    // shard count the way two separate engine calls could.
    double prefetch_serialized = 0.0, prefetch_total = 0.0;
    for (const auto &plan : plans) {
        prefetch_serialized += plan.prefetch.serializedSeconds();
        prefetch_total += plan.prefetch.overlapped_seconds;
    }
    std::printf("  prefetch total: %.1f ms overlapped vs %.1f ms "
                "serialized (backward, reverse order, %s first)\n\n",
                prefetch_total * 1e3, prefetch_serialized * 1e3,
                plans.empty() ? "-" : plans.back().label.c_str());

    // 3a. The full-duplex race: the same shard trains with both
    //     directions sharing one half-duplex link (PCIe's degraded
    //     operating point) instead of riding independent sub-channels.
    CdmaConfig half_config = engine_config;
    half_config.compression.lanes = 1; // analytic path only
    half_config.transfer.duplex_mode = DuplexMode::Half;
    const CdmaEngine half_engine(half_config);
    const auto half_plans = manager.plannedOffloads(half_engine, ratios);
    double worst_fraction = 0.0, sum_fraction = 0.0;
    double contention = 0.0;
    std::string worst_layer = "-";
    for (const auto &plan : half_plans) {
        contention += plan.duplex.contentionSeconds();
        sum_fraction += plan.duplex.contentionStallFraction();
        if (plan.duplex.contentionStallFraction() > worst_fraction) {
            worst_fraction = plan.duplex.contentionStallFraction();
            worst_layer = plan.label;
        }
    }
    std::printf("duplex race (offload vs equal prefetch, half-duplex "
                "link, %s arbiter): %.1f ms total contention, stall "
                "fraction %.1f%% avg / %.1f%% worst (%s)\n\n",
                linkArbiterName(half_engine.config().transfer.link_arbiter),
                contention * 1e3,
                half_plans.empty()
                    ? 0.0
                    : 100.0 * sum_fraction /
                        static_cast<double>(half_plans.size()),
                100.0 * worst_fraction, worst_layer.c_str());

    // 3b. Real bytes through the compressed spill arena: offload each
    //     sampled activation map into recycled shard slots, then
    //     prefetch it back on the "backward pass" and verify identity.
    //     The high-water mark is what a pinned host reservation for the
    //     spill space would need; steady-state iterations reuse it.
    SpillArena arena;
    std::vector<SpillTicket> tickets;
    std::vector<std::vector<uint8_t>> originals;
    for (size_t i = 0; i < net.layers.size() && i < 6; ++i) {
        const LayerDesc &layer = net.layers[i];
        const double density = layer.relu_follows
            ? schedule.density(i, 1.0)
            : 1.0;
        const int64_t max_c = std::max<int64_t>(
            1, (1 << 19) / (layer.height * layer.width));
        Rng rng(900 + i);
        const Tensor4D sample = generator.generate(
            Shape4D{1, std::min(layer.channels, max_c), layer.height,
                    layer.width},
            Layout::NCHW, density, rng);
        const auto raw = sample.rawBytes();
        originals.emplace_back(raw.begin(), raw.end());
    }
    // Two iterations: the first bump-allocates the arena's slabs, the
    // second (steady state) is served entirely from recycled slots.
    bool restored_ok = true;
    uint64_t first_iter_slabs = 0;
    for (int iteration = 0; iteration < 2; ++iteration) {
        tickets.clear();
        for (const auto &original : originals)
            tickets.push_back(
                transfers.offloadInto(original, arena)->ticket);
        for (size_t i = tickets.size(); i-- > 0;) {
            const StatusOr<PrefetchResult> restored =
                transfers.prefetch(arena, tickets[i]);
            restored_ok = restored_ok && restored.ok() &&
                restored->data == originals[i];
            arena.release(tickets[i]);
        }
        if (iteration == 0)
            first_iter_slabs = arena.stats().slab_allocations;
    }
    const SpillStats &spill = arena.stats();
    std::printf("spill arena (2 iterations x %zu maps, prefetched in "
                "reverse): restored %s\n",
                originals.size(),
                restored_ok ? "byte-identical" : "MISMATCH");
    std::printf("  high water %.1f KB compressed in %llu slabs "
                "(%.1f KB reserved, all on iteration 1: %llu new slabs "
                "on iteration 2), %llu/%llu shard stores from recycled "
                "slots\n\n",
                static_cast<double>(spill.high_water_payload_bytes) /
                    1024.0,
                static_cast<unsigned long long>(spill.slab_allocations),
                static_cast<double>(spill.slab_bytes) / 1024.0,
                static_cast<unsigned long long>(spill.slab_allocations -
                                                first_iter_slabs),
                static_cast<unsigned long long>(spill.reused_slots),
                static_cast<unsigned long long>(spill.stored_shards));

    // 3c. The same ticket flow over a faulty link: a seeded fault
    //     process flips bits (and occasionally drops crossings), the
    //     CRC-32C shard framing catches the damage on landing, and the
    //     engine re-sends under its retry policy — the restored bytes
    //     must stay byte-identical, because integrity is end to end.
    sim::FaultConfig fault_config;
    fault_config.bit_flip_rate_per_byte = 2e-5;
    fault_config.link_failure_rate = 1e-3;
    sim::FaultInjector injector(fault_config);
    CdmaConfig faulty_config = engine_config;
    faulty_config.transfer.fault_injector = &injector;
    const CdmaEngine faulty_engine(faulty_config);
    const TransferEngine faulty(faulty_engine);
    SpillArena faulty_arena;
    TransferIntegrity integrity;
    bool faulty_ok = true;
    for (size_t i = 0; i < originals.size() && faulty_ok; ++i) {
        const StatusOr<SpilledOffload> spilled =
            faulty.offloadInto(originals[i], faulty_arena);
        if (!spilled.ok()) {
            faulty_ok = false;
            break;
        }
        integrity.accumulate(spilled->integrity);
        const StatusOr<PrefetchResult> restored =
            faulty.prefetch(faulty_arena, spilled->ticket);
        if (!restored.ok()) {
            faulty_ok = false;
            break;
        }
        integrity.accumulate(restored->integrity);
        faulty_ok = restored->data == originals[i];
        faulty_arena.release(spilled->ticket);
    }
    std::printf("faulty link (bit flips 2e-5/byte, link loss 1e-3, "
                "seed %#llx): restored %s\n",
                static_cast<unsigned long long>(
                    injector.config().seed),
                faulty_ok ? "byte-identical" : "FAILED");
    std::printf("  %llu crossings, %llu retries (%llu CRC rejects, "
                "%llu link faults), %llu shard(s) degraded to raw "
                "framing, %.3f ms retry stall\n\n",
                static_cast<unsigned long long>(integrity.attempts),
                static_cast<unsigned long long>(integrity.retries),
                static_cast<unsigned long long>(integrity.crc_failures),
                static_cast<unsigned long long>(integrity.link_faults),
                static_cast<unsigned long long>(
                    integrity.degraded_shards),
                integrity.retry_stall_seconds * 1e3);

    // 4. Simulated iteration under each mode, with the overlap-aware
    //    engine timing the cDMA transfers.
    PerfModel perf;
    StepSimulator sim(manager, engine, perf, CudnnVersion::V5);
    const StepResult oracle = sim.run(StepMode::Oracle);
    const StepResult vdnn = sim.run(StepMode::Vdnn);
    // Trace only the cDMA iteration (one recorder, one traced
    // timeline): per-layer compute spans and PCIe wire spans land on
    // the "<network>.cdma" process.
    obs::TraceRecorder trace;
    if (!trace_out.empty())
        sim.setTrace(&trace, net.name + ".cdma");
    const StepResult cdma = sim.run(StepMode::Cdma, ratios);
    sim.setTrace(nullptr, "");

    std::printf("iteration time: oracle %.1f ms | cDMA-ZV %.1f ms | "
                "vDNN %.1f ms   (%s timing)\n",
                oracle.total_seconds * 1e3, cdma.total_seconds * 1e3,
                vdnn.total_seconds * 1e3,
                timingModeName(engine.config().transfer.timing_mode).c_str());
    std::printf("cDMA speedup over vDNN: %.0f%%; PCIe wire traffic "
                "%.2f GB -> %.2f GB\n",
                100.0 * (cdma.speedupOver(vdnn) - 1.0),
                static_cast<double>(vdnn.wire_transfer_bytes) / 1e9,
                static_cast<double>(cdma.wire_transfer_bytes) / 1e9);

    // The same iteration with both directions sharing one half-duplex
    // link: the boundary race (tail offload vs head prefetches) shows
    // up as contention stall.
    StepSimulator half_sim(manager, half_engine, perf, CudnnVersion::V5);
    const StepResult cdma_half = half_sim.run(StepMode::Cdma, ratios);
    std::printf("half-duplex link: cDMA-ZV %.1f ms (%+.2f%% vs full "
                "duplex), contention stall %.3f ms (%.2f%% of the "
                "iteration)\n\n",
                cdma_half.total_seconds * 1e3,
                100.0 * (cdma_half.total_seconds / cdma.total_seconds -
                         1.0),
                (cdma_half.offload_contention_seconds +
                 cdma_half.prefetch_contention_seconds) * 1e3,
                100.0 * cdma_half.contentionStallFraction());

    // 4b. Adaptive codec policy: the engine's cost model picks
    //     ZVC/RLE/ZL/raw per layer from the layer's activation density,
    //     priced against the contended (half-duplex-share) wire — dense
    //     layers ship raw instead of paying software compression that
    //     cannot beat the link. Per layer: the chosen codec, the
    //     policy's predicted offload cost, and what the DES actually
    //     charged.
    PolicyConfig policy_config;
    policy_config.wire_bandwidth =
        engine_config.gpu.pcie_effective_bandwidth / 2.0;
    policy_config.metrics = &metrics;
    CodecPolicyEngine policy(policy_config);
    // Same half-duplex engine as 3a/4, so the contended-wire pricing
    // the policy decides with is the link the DES actually runs.
    CdmaConfig adaptive_config = half_config;
    adaptive_config.compression.mode = CodecMode::Adaptive;
    adaptive_config.compression.policy = &policy;
    const CdmaEngine adaptive_engine(adaptive_config);
    std::vector<double> densities;
    for (size_t i = 0; i < net.layers.size(); ++i) {
        densities.push_back(net.layers[i].relu_follows
                                ? schedule.density(i, 1.0)
                                : 1.0);
    }
    StepSimulator adaptive_sim(manager, adaptive_engine, perf,
                               CudnnVersion::V5);
    const StepResult adaptive = adaptive_sim.runAdaptive(densities);
    std::printf("adaptive codec policy (contended wire %.1f GB/s):\n",
                policy_config.wire_bandwidth / 1e9);
    std::printf("  %-12s %7s %5s | %9s %9s %7s\n", "layer", "density",
                "codec", "pred ms", "DES ms", "delta");
    for (size_t i = 0; i < adaptive.layers.size(); ++i) {
        const auto &layer = adaptive.layers[i];
        if (layer.policy_predicted_seconds <= 0.0)
            continue;
        // The transfer paired with row i carries row i-1's output.
        const double density = i > 0 ? densities[i - 1] : 1.0;
        const double delta = layer.policy_actual_seconds > 0.0
            ? 100.0 * (layer.policy_predicted_seconds -
                       layer.policy_actual_seconds) /
                layer.policy_actual_seconds
            : 0.0;
        std::printf("  %-12s %6.0f%% %5s | %9.3f %9.3f %+6.1f%%\n",
                    layer.label.c_str(), 100.0 * density,
                    codecName(layer.codec).c_str(),
                    layer.policy_predicted_seconds * 1e3,
                    layer.policy_actual_seconds * 1e3, delta);
    }
    std::printf("  adaptive iteration %.1f ms (static-ZV half-duplex "
                "%.1f ms), %llu decisions, %llu codec switch(es)\n\n",
                adaptive.total_seconds * 1e3,
                cdma_half.total_seconds * 1e3,
                static_cast<unsigned long long>(policy.decisions()),
                static_cast<unsigned long long>(policy.switches()));

    // 5. The five worst stalling layers under vDNN, and their fate under
    //    cDMA.
    std::printf("worst vDNN stalls (layer: fwd stall -> cDMA fwd "
                "stall, ms):\n");
    std::vector<size_t> order(vdnn.layers.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return vdnn.layers[a].forward_stall >
            vdnn.layers[b].forward_stall;
    });
    for (size_t k = 0; k < std::min<size_t>(5, order.size()); ++k) {
        const auto &v = vdnn.layers[order[k]];
        const auto &c = cdma.layers[order[k]];
        if (v.forward_stall <= 0.0)
            break;
        std::printf("  %-12s %7.2f -> %7.2f\n", v.label.c_str(),
                    v.forward_stall * 1e3, c.forward_stall * 1e3);
    }

    // 6. What the registry accumulated across everything above: real
    //    kernel wall-clock per backend, and the DES-modeled per-shard
    //    transfer latency. The same registry serializes to
    //    --metrics-out, so the printed and exported numbers can never
    //    disagree.
    const obs::HistogramMetric &kernel_wall = metrics.histogram(
        std::string("kernel.compress.wall_seconds.") +
        engine.backendName());
    const obs::HistogramMetric &shard_latency =
        metrics.histogram("transfer.offload.shard_latency_seconds");
    std::printf("\nkernel compress wall-clock (%s): p50 %.1f us / "
                "p95 %.1f us / p99 %.1f us over %llu shards\n",
                engine.backendName(),
                kernel_wall.percentile(0.50) * 1e6,
                kernel_wall.percentile(0.95) * 1e6,
                kernel_wall.percentile(0.99) * 1e6,
                static_cast<unsigned long long>(kernel_wall.count()));
    std::printf("modeled offload shard latency: p50 %.3f ms / "
                "p95 %.3f ms / p99 %.3f ms over %llu shards\n",
                shard_latency.percentile(0.50) * 1e3,
                shard_latency.percentile(0.95) * 1e3,
                shard_latency.percentile(0.99) * 1e3,
                static_cast<unsigned long long>(shard_latency.count()));
    if (!trace_out.empty()) {
        trace.writeFileOrDie(trace_out);
        std::printf("wrote trace: %s (%zu events)\n", trace_out.c_str(),
                    trace.eventCount());
    }
    if (!metrics_out.empty()) {
        metrics.writeFileOrDie(metrics_out);
        std::printf("wrote metrics: %s\n", metrics_out.c_str());
    }
    return 0;
}
